//! Distributed shard dispatcher: runs a whole sharded campaign against a
//! host pool and merges the result.
//!
//! ```text
//! dispatch --grid <id> --shards <N> --pool <pool.toml|pool.json>
//!          [--profile full|fast] [--out <dir>] [--work-root <dir>]
//!          [--bin-dir <dir>] [--lease-secs <s>] [--poll-ms <ms>]
//!          [--max-host-failures <k>] [--inject-kill <shard>:<cells>]
//! ```
//!
//! The pool spec lists hosts (`name`, `transport = "local"|"ssh"`,
//! `capacity`, ssh `addr`/`remote_dir`, optional `command` argv template
//! with `{grid}`/`{profile}` placeholders). Shards `1/N … N/N` of the
//! named grid are assigned to hosts up to capacity and launched through
//! each host's transport: `local` spawns the experiment binary named
//! after the grid (from `--bin-dir`, default: next to this executable)
//! with `REUNION_SHARD=i/N`; `ssh` runs the same command remotely with
//! the manifest format as the only contract. Progress is monitored by
//! tailing each worker's crash-safe manifest; a worker that dies, or
//! gains no cell within the lease, is killed and its shard re-dispatched
//! to a healthy host, seeded with the partial manifest so completed cells
//! are resumed, not re-run. Hosts exceeding `--max-host-failures` are
//! evicted from the pool.
//!
//! On success, `<out>/BENCH_<id>.json` is **byte-identical** to a
//! single-process run of the same grid and profile, and feeds straight
//! into `compare_trajectory`.
//!
//! `--inject-kill <shard>:<cells>` deliberately kills one worker after
//! its manifest reaches `<cells>` completed cells — the failure-injection
//! hook CI's `dispatch-e2e` job uses to prove the recovery path end to
//! end. If the target worker finishes before the kill can fire, the
//! campaign exits with an error rather than passing without having
//! exercised recovery.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use reunion_bench::{run_options_with_extras, Profile, RUN_OPTIONS_USAGE};
use reunion_dispatch::{DispatchConfig, Dispatcher, FailureInjection, HostPool, TransportDefaults};

struct Opts {
    grid: String,
    shards: usize,
    pool: PathBuf,
    profile: Profile,
    out: PathBuf,
    work_root: Option<PathBuf>,
    bin_dir: Option<PathBuf>,
    lease: Duration,
    poll: Duration,
    max_host_failures: u32,
    inject_kill: Option<FailureInjection>,
}

fn usage() -> String {
    format!(
        "usage: dispatch --grid <id> --shards <N> --pool <pool.toml|pool.json>\n\
         \x20      [--out <dir>] [--work-root <dir>]\n\
         \x20      [--bin-dir <dir>] [--lease-secs <s>] [--poll-ms <ms>]\n\
         \x20      [--max-host-failures <k>] [--inject-kill <shard>:<cells>]\n\
         \x20      plus the shared {RUN_OPTIONS_USAGE}"
    )
}

fn parse_inject(s: &str) -> Result<FailureInjection, String> {
    let (shard, cells) = s
        .split_once(':')
        .ok_or_else(|| format!("--inject-kill expects <shard>:<cells>, got {s:?}"))?;
    Ok(FailureInjection {
        shard_index: shard
            .parse()
            .map_err(|_| format!("bad shard index in {s:?}"))?,
        after_cells: cells
            .parse()
            .map_err(|_| format!("bad cell count in {s:?}"))?,
    })
}

fn parse_args(args: impl Iterator<Item = String>, profile: Profile) -> Result<Opts, String> {
    let mut grid = None;
    let mut shards = None;
    let mut pool = None;
    let mut out = reunion_sim::out_dir();
    let mut work_root = None;
    let mut bin_dir = None;
    let mut lease = Duration::from_secs(600);
    let mut poll = Duration::from_millis(500);
    let mut max_host_failures = 2;
    let mut inject_kill = None;
    let mut it = args;
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} requires a value"));
        match arg.as_str() {
            "--grid" => grid = Some(value("--grid")?),
            "--shards" => {
                shards = Some(
                    value("--shards")?
                        .parse::<usize>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or("--shards requires a positive integer")?,
                )
            }
            "--pool" => pool = Some(PathBuf::from(value("--pool")?)),
            "--out" => out = PathBuf::from(value("--out")?),
            "--work-root" => work_root = Some(PathBuf::from(value("--work-root")?)),
            "--bin-dir" => bin_dir = Some(PathBuf::from(value("--bin-dir")?)),
            "--lease-secs" => {
                lease = Duration::from_secs(
                    value("--lease-secs")?
                        .parse()
                        .map_err(|_| "--lease-secs requires a number of seconds")?,
                )
            }
            "--poll-ms" => {
                poll = Duration::from_millis(
                    value("--poll-ms")?
                        .parse()
                        .map_err(|_| "--poll-ms requires a number of milliseconds")?,
                )
            }
            "--max-host-failures" => {
                max_host_failures = value("--max-host-failures")?
                    .parse::<u32>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or("--max-host-failures requires a positive integer")?
            }
            "--inject-kill" => inject_kill = Some(parse_inject(&value("--inject-kill")?)?),
            other => return Err(format!("unrecognized argument {other:?}")),
        }
    }
    Ok(Opts {
        grid: grid.ok_or("--grid is required")?,
        shards: shards.ok_or("--shards is required")?,
        pool: pool.ok_or("--pool is required")?,
        profile,
        out,
        work_root,
        bin_dir,
        lease,
        poll,
        max_host_failures,
        inject_kill,
    })
}

fn main() -> ExitCode {
    // Shared surface first (profile/engine/obs/...; exported to the
    // environment so locally spawned workers inherit the choices), then
    // the dispatcher's own flags from the leftovers.
    let (run, leftovers) = run_options_with_extras();
    let opts = match parse_args(leftovers.into_iter(), run.profile) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("{e}");
            eprintln!("{}", usage());
            return ExitCode::from(2);
        }
    };

    let pool = match HostPool::load(&opts.pool) {
        Ok(pool) => pool,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };

    // Local workers default to the sibling experiment binary named after
    // the grid: `dispatch` and `fig5` both live in target/<profile>/.
    let bin_dir = opts.bin_dir.clone().unwrap_or_else(|| {
        std::env::current_exe()
            .ok()
            .and_then(|p| p.parent().map(PathBuf::from))
            .unwrap_or_else(|| PathBuf::from("."))
    });
    let defaults = TransportDefaults {
        work_root: opts
            .work_root
            .clone()
            .unwrap_or_else(|| opts.out.join("hosts")),
        command: vec![
            bin_dir.join("{grid}").display().to_string(),
            "--profile".to_string(),
            "{profile}".to_string(),
        ],
    };
    let transports = match pool.build_transports(&defaults) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };

    println!(
        "[dispatch] {} shard(s) of {} over {} host(s) (capacity {}), profile {}",
        opts.shards,
        opts.grid,
        pool.hosts().len(),
        pool.capacity(),
        opts.profile,
    );
    let mut cfg = DispatchConfig::new(&opts.grid, opts.shards, &opts.out)
        .profile(opts.profile.to_string())
        .lease(opts.lease)
        .poll(opts.poll)
        .max_host_failures(opts.max_host_failures);
    if let Some(injection) = opts.inject_kill {
        cfg = cfg.inject_kill(injection);
    }
    match Dispatcher::new(cfg, transports).run() {
        Ok(report) => {
            println!(
                "[dispatch] campaign complete: {} attempt(s), {} re-dispatch(es), \
                 {} host(s) evicted",
                report.attempts.len(),
                report.redispatches,
                report.evicted_hosts.len(),
            );
            println!(
                "[dispatch] merged artifact: {}",
                report.bench_path.display()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("dispatch failed: {e}");
            ExitCode::FAILURE
        }
    }
}

//! Figure 7(b): Reunion commercial-workload average with hardware-managed
//! vs UltraSPARC III software-managed TLBs, across comparison latencies.

use reunion_bench::{banner, sample_config, workloads};
use reunion_core::{normalized_ipc, ExecutionMode, SystemConfig};
use reunion_cpu::TlbMode;

fn main() {
    banner(
        "Figure 7(b)",
        "Commercial average: hardware vs software-managed TLB (Reunion)",
    );
    let sample = sample_config();
    let latencies = [0u64, 10, 20, 30, 40];
    println!(
        "{:<22} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "tlb model", "lat=0", "lat=10", "lat=20", "lat=30", "lat=40"
    );
    for (label, tlb) in [
        ("US III hardware TLB", TlbMode::Hardware { walk_latency: 30 }),
        ("US III software TLB", TlbMode::Software),
    ] {
        print!("{label:<22}");
        for &latency in &latencies {
            let mut acc = 0.0;
            let mut n = 0;
            for w in workloads().into_iter().filter(|w| w.class().is_commercial()) {
                let mut cfg = SystemConfig::table1(ExecutionMode::Reunion);
                cfg.comparison_latency = latency;
                cfg.tlb = tlb;
                acc += normalized_ipc(&cfg, &w, &sample).normalized_ipc;
                n += 1;
            }
            print!(" {:>8.3}", acc / n as f64);
        }
        println!();
    }
    println!("--------------------------------------------------------------");
    println!("(paper: the software-managed handler's serializing traps and");
    println!(" non-idempotent MMU accesses grow the penalty to ~28% at 40 cy.)");
}

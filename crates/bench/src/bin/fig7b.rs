//! Figure 7(b): Reunion commercial-workload average with hardware-managed
//! vs UltraSPARC III software-managed TLBs, across comparison latencies.

use reunion_bench::{
    banner, commercial_workloads, keyed_latency_label, run_and_emit, run_options, SWEEP_LATENCIES,
};
use reunion_core::ExecutionMode;
use reunion_cpu::TlbMode;
use reunion_sim::{ConfigPatch, ExperimentGrid};

const TLBS: [(&str, &str, TlbMode); 2] = [
    (
        "hw",
        "US III hardware TLB",
        TlbMode::Hardware { walk_latency: 30 },
    ),
    ("sw", "US III software TLB", TlbMode::Software),
];

fn main() {
    let opts = run_options();
    banner(
        "Figure 7(b)",
        "Commercial average: hardware vs software-managed TLB (Reunion)",
    );
    let mut patches = Vec::new();
    for (key, _, tlb) in TLBS {
        for &latency in &SWEEP_LATENCIES {
            patches.push(
                ConfigPatch::new(keyed_latency_label(key, latency))
                    .tlb(tlb)
                    .latency(latency),
            );
        }
    }
    let grid = ExperimentGrid::builder(
        "fig7b",
        "Commercial average: hardware vs software-managed TLB (Reunion)",
    )
    .run_options(&opts)
    .sample(opts.sample())
    .workloads(commercial_workloads())
    .modes(&[ExecutionMode::Reunion])
    .patches(patches)
    .build();
    let Some(report) = run_and_emit(&grid).into_report() else {
        return;
    };

    println!(
        "{:<22} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "tlb model", "lat=0", "lat=10", "lat=20", "lat=30", "lat=40"
    );
    for (key, label, _) in TLBS {
        print!("{label:<22}");
        for &latency in &SWEEP_LATENCIES {
            let avg = report.mean_normalized_where(
                ExecutionMode::Reunion,
                &keyed_latency_label(key, latency),
                |c| c.is_commercial(),
            );
            print!(" {avg:>8.3}");
        }
        println!();
    }
    println!("--------------------------------------------------------------");
    println!("(paper: the software-managed handler's serializing traps and");
    println!(" non-idempotent MMU accesses grow the penalty to ~28% at 40 cy.)");
}

//! Determinism guards for the many-core scaling study.
//!
//! The `fig_scaling` grid is the first to exercise 8- and 16-pair
//! machines, the banked-L2 arbiter with bounded crossbar ports, and the
//! shared check bus together. Its gated artifact inherits the same two
//! contracts as every other figure: byte-identical reports between the
//! dense and skip engines, and between serial and parallel execution
//! schedules. These tests pin both at the scaled-up operating points on a
//! quick sampling profile, so a violation fails `cargo test` long before
//! the CI artifact gate sees it.

use reunion_core::{Engine, ExecutionMode, ObsConfig, SampleConfig, SystemConfig};
use reunion_mem::MemConfig;
use reunion_sim::{ConfigPatch, ExperimentGrid, Runner};
use reunion_workloads::Workload;

/// The contention-enabled base the scaling study uses, shrunk to the
/// small-test cache geometry so 16-pair cells stay test-suite cheap.
fn scaling_base(mode: ExecutionMode) -> SystemConfig {
    SystemConfig::small_test(mode).with_mem(
        MemConfig::small()
            .with_xbar_ports(2)
            .with_bank_queue_depth(2),
    )
}

fn scaling_grid(engine: Engine) -> ExperimentGrid {
    ExperimentGrid::builder("scalingtest", "scaling determinism grid")
        .engine(engine)
        .base(scaling_base)
        .sample(SampleConfig::quick())
        .workloads(vec![
            Workload::by_name("apache").expect("in suite"),
            Workload::by_name("moldyn").expect("in suite"),
        ])
        .modes(&[ExecutionMode::Reunion])
        .patches(vec![
            ConfigPatch::new("p8:bw2:lat=10")
                .logical_processors(8)
                .check_bandwidth(2)
                .latency(10),
            ConfigPatch::new("p16:bw2:lat=10")
                .logical_processors(16)
                .check_bandwidth(2)
                .latency(10),
            ConfigPatch::new("p16:bw0:lat=10")
                .logical_processors(16)
                .check_bandwidth(0)
                .latency(10),
        ])
        .build()
}

/// Dense ↔ skip byte-identity at 8 and 16 pairs with every contention
/// model engaged: bus grants happen only inside ticked comparison cycles
/// and the arbiter cursor advances only on arbitration, so the skip
/// engine may not reorder or drop either.
#[test]
fn scaling_reports_are_engine_invariant() {
    let dense = Runner::serial().run(&scaling_grid(Engine::Dense)).to_json();
    let skip = Runner::serial().run(&scaling_grid(Engine::Skip)).to_json();
    assert_eq!(dense, skip);
}

/// Serial ↔ parallel byte-identity: cells at different pair counts are
/// independent systems, so a work-stealing schedule must reassemble the
/// identical report.
#[test]
fn scaling_reports_are_schedule_invariant() {
    let grid = scaling_grid(Engine::default());
    let serial = Runner::serial().run(&grid).to_json();
    let parallel = Runner::with_threads(4).run(&grid).to_json();
    assert_eq!(serial, parallel);
}

/// Serial ↔ intra-cell-parallel byte-identity at the report level, up to
/// 32 pairs, under both engines, with observability collecting: the whole
/// `BENCH_<id>.json` surface — normalized IPC, counters, obs histograms —
/// must be unchanged when every cell's compute phase fans out to worker
/// threads. The worker count is deliberately left prime and mismatched to
/// the pair counts so batches split unevenly.
#[test]
fn scaling_reports_are_intracell_invariant() {
    let grid_with = |engine: Engine, intracell: usize| {
        ExperimentGrid::builder("scalingtest-intracell", "intra-cell determinism grid")
            .engine(engine)
            .observability(ObsConfig {
                enabled: true,
                trace_cap: 8,
            })
            .base(scaling_base)
            .intracell_threads(intracell)
            .sample(SampleConfig::quick())
            .workloads(vec![Workload::by_name("apache").expect("in suite")])
            .modes(&[ExecutionMode::Reunion])
            .patches(vec![
                ConfigPatch::new("p8:bw2:lat=10")
                    .logical_processors(8)
                    .check_bandwidth(2)
                    .latency(10),
                ConfigPatch::new("p32:bw2:lat=10")
                    .logical_processors(32)
                    .check_bandwidth(2)
                    .latency(10),
            ])
            .build()
    };
    for engine in [Engine::Dense, Engine::Skip] {
        let serial = Runner::serial().run(&grid_with(engine, 0)).to_json();
        let parallel = Runner::serial().run(&grid_with(engine, 3)).to_json();
        assert_eq!(
            serial, parallel,
            "{engine}: intra-cell compute changed a report"
        );
    }
}

/// The scaling knobs are not silent no-ops: at 16 pairs a shared 2-cycle
/// check bus must cost normalized IPC against private channels.
#[test]
fn shared_check_bus_costs_throughput_at_scale() {
    let report = Runner::serial().run(&scaling_grid(Engine::default()));
    let ipc = |label: &str| {
        report
            .get("apache", ExecutionMode::Reunion, label)
            .and_then(|r| r.normalized())
            .expect("scaling record")
            .normalized_ipc
    };
    assert!(
        ipc("p16:bw2:lat=10") < ipc("p16:bw0:lat=10"),
        "a saturated shared check bus must slow retirement"
    );
}

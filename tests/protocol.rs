//! End-to-end tests of the Reunion execution model's correctness claims:
//! Lemma 1 (incoherence alone cannot produce unsafe state), Lemma 2
//! (forward progress), and the failure semantics of Figure 4.

use std::sync::Arc;

use reunion_core::{CheckBus, CmpSystem, ExecutionMode, PairDriver, RecoveryPhase, SystemConfig};
use reunion_cpu::{Core, CoreConfig};
use reunion_isa::{Addr, AluOp, Instruction as I, Program, RegId};
use reunion_kernel::Cycle;
use reunion_mem::{MemConfig, MemorySystem, Owner};
use reunion_workloads::Workload;

fn r(i: u8) -> RegId {
    RegId::new(i)
}

/// Lemma 1: with races but no soft errors, the vocal's retired state always
/// equals what a sequentially-executed golden model would produce given the
/// same observed load values — operationally, the pair's two retired states
/// always agree after recovery and no failure is ever declared.
#[test]
fn incoherence_alone_never_produces_unsafe_state() {
    let program = Arc::new(
        Program::new(
            "racy",
            vec![
                I::load_imm(r(1), 0x9000),
                I::load(r(2), r(1), 0),
                I::alu(AluOp::Xor, r(3), r(3), r(2)),
                I::load(r(4), r(1), 64),
                I::alu(AluOp::Add, r(3), r(3), r(4)),
                I::jump(1),
            ],
        )
        .unwrap(),
    );
    let mut mem = MemorySystem::new(MemConfig::small());
    let vl1 = mem.register_l1(Owner::vocal(0));
    let ml1 = mem.register_l1(Owner::mute(0));
    let wl1 = mem.register_l1(Owner::vocal(1));
    let cfg = CoreConfig::default().checked();
    let vocal = Core::new(cfg.clone(), program.clone(), vl1, 3);
    let mut mute = Core::new(cfg, program, ml1, 3);
    mute.set_mute(true);
    let mut pair = PairDriver::new(vocal, mute, 10, false);
    let mut bus = CheckBus::new(0);

    for now in 0..80_000u64 {
        if now % 421 == 0 {
            mem.drain_store(Cycle::new(now), wl1, Addr::new(0x9000), now);
        }
        if now % 677 == 0 {
            mem.drain_store(Cycle::new(now), wl1, Addr::new(0x9040), now * 3);
        }
        pair.tick(Cycle::new(now), &mut mem, &mut bus);
    }

    assert!(
        pair.stats().mismatches.value() > 0,
        "races must be observed"
    );
    assert_eq!(pair.stats().failures.value(), 0, "Lemma 1: no unsafe state");
    assert_eq!(
        pair.vocal().arch_state().regs,
        pair.mute().arch_state().regs,
        "pair safe states agree after every recovery"
    );
}

/// Lemma 2: the re-execution protocol makes forward progress even when the
/// incoherent condition persists in the mute hierarchy (here: a permanently
/// hot racing line that the mute keeps re-caching).
#[test]
fn reexecution_protocol_guarantees_forward_progress() {
    let program = Arc::new(
        Program::new(
            "hot",
            vec![
                I::load_imm(r(1), 0xA000),
                I::load(r(2), r(1), 0),
                I::jump(1),
            ],
        )
        .unwrap(),
    );
    let mut mem = MemorySystem::new(MemConfig::small());
    let vl1 = mem.register_l1(Owner::vocal(0));
    let ml1 = mem.register_l1(Owner::mute(0));
    let wl1 = mem.register_l1(Owner::vocal(1));
    let cfg = CoreConfig::default().checked();
    let vocal = Core::new(cfg.clone(), program.clone(), vl1, 11);
    let mut mute = Core::new(cfg, program, ml1, 11);
    mute.set_mute(true);
    let mut pair = PairDriver::new(vocal, mute, 10, false);
    let mut bus = CheckBus::new(0);

    let mut last_retired = 0;
    for now in 0..120_000u64 {
        // Write the line aggressively: every 150 cycles.
        if now % 150 == 75 {
            mem.drain_store(Cycle::new(now), wl1, Addr::new(0xA000), now);
        }
        pair.tick(Cycle::new(now), &mut mem, &mut bus);
        if now % 20_000 == 19_999 {
            let retired = pair.retired_user();
            assert!(
                retired > last_retired,
                "no forward progress between cycle {} and {}",
                now - 20_000,
                now
            );
            last_retired = retired;
        }
    }
    assert!(pair.stats().recoveries.value() > 10);
    assert_eq!(pair.stats().failures.value(), 0);
}

/// Figure 4, right branch: when phase-1 re-execution cannot reconcile the
/// pair (divergent retired state, as after fingerprint aliasing), phase 2
/// copies the vocal ARF and recovers.
#[test]
fn phase_two_repairs_retired_divergence() {
    let program = Arc::new(
        Program::new(
            "ph2",
            vec![
                I::load_imm(r(1), 0xB000),
                I::load(r(2), r(1), 0),
                I::alu(AluOp::Add, r(3), r(3), r(2)),
                I::jump(1),
            ],
        )
        .unwrap(),
    );
    let mut mem = MemorySystem::new(MemConfig::small());
    let vl1 = mem.register_l1(Owner::vocal(0));
    let ml1 = mem.register_l1(Owner::mute(0));
    let cfg = CoreConfig::default().checked();
    let vocal = Core::new(cfg.clone(), program.clone(), vl1, 13);
    let mut mute = Core::new(cfg, program, ml1, 13);
    mute.set_mute(true);
    let mut pair = PairDriver::new(vocal, mute, 10, false);
    let mut bus = CheckBus::new(0);

    for now in 0..3_000u64 {
        pair.tick(Cycle::new(now), &mut mem, &mut bus);
    }
    // Simulate aliasing having let divergent state retire: the mute's load
    // base register now points somewhere else entirely.
    let mut corrupted = pair.mute().arch_state().clone();
    corrupted.regs.write(r(1), 0xB100);
    pair.mute_mut().copy_arch_state_from(&corrupted);

    for now in 3_000..60_000u64 {
        pair.tick(Cycle::new(now), &mut mem, &mut bus);
    }
    assert!(pair.stats().phase2_recoveries.value() >= 1);
    assert_eq!(pair.stats().failures.value(), 0);
    assert_eq!(pair.phase(), RecoveryPhase::Normal);
    assert_eq!(
        pair.vocal().arch_state().regs.read(r(1)),
        pair.mute().arch_state().regs.read(r(1)),
        "phase 2 must restore agreement"
    );
}

/// Soft errors injected through the public system API are detected and
/// recovered on real workloads, and never corrupt the vocal's architecture.
#[test]
fn soft_errors_on_workloads_are_recovered() {
    let workload = Workload::by_name("zeus").unwrap();
    let cfg = SystemConfig::small_test(ExecutionMode::Reunion);
    let mut sys = CmpSystem::new(&cfg, &workload);
    sys.run(5_000);
    sys.pair_mut(0)
        .unwrap()
        .vocal_mut()
        .inject_soft_error_at(1_000, 9);
    sys.pair_mut(1)
        .unwrap()
        .mute_mut()
        .inject_soft_error_at(2_000, 23);
    sys.run(50_000);
    let stats = sys.window_stats();
    assert!(
        stats.mismatches >= 2,
        "both errors detected, got {}",
        stats.mismatches
    );
    assert_eq!(stats.failures, 0);
    // The two halves of a pair drift apart by up to the comparison latency
    // during normal execution; every recovery (and every drained
    // serializing boundary) re-lands them on identical safe states. Poll
    // for that recurring agreement point instead of asserting at an
    // arbitrary cycle.
    for lp in 0..2 {
        let mut agreed = false;
        for _ in 0..200 {
            let pair = sys.pair_mut(lp).unwrap();
            if pair.vocal().arch_state().regs == pair.mute().arch_state().regs {
                agreed = true;
                break;
            }
            sys.run(250);
        }
        assert!(
            agreed,
            "pair {lp} safe states never re-agree after recovery"
        );
    }
}

/// External interrupts are serviced at the same instruction on both cores:
/// fingerprints keep matching and no recovery is triggered.
///
/// Uses a race-free custom workload (all sharing weights zeroed) so any
/// mismatch is attributable to interrupt servicing rather than to the
/// suite's deliberately racy sharing model.
#[test]
fn interrupts_replicate_cleanly_across_the_pair() {
    let base = Workload::by_name("ocean").unwrap();
    let mut spec = base.spec().clone();
    spec.lock_weight = 0.0;
    spec.lock_sharing = 0.0;
    spec.sharing.hot_write_fraction = 0.0;
    spec.sharing.migratory_weight = 0.0;
    spec.sharing.producer_consumer_weight = 0.0;
    spec.sharing.lock_contention = 0.0;
    spec.store_fraction = 0.0;
    let workload = Workload::from_spec(spec);
    let cfg = SystemConfig::small_test(ExecutionMode::Reunion);
    let mut sys = CmpSystem::new(&cfg, &workload);
    sys.run(3_000);
    let before = sys.window_stats().mismatches;
    for _ in 0..5 {
        sys.deliver_interrupt(0);
        sys.run(4_000);
    }
    let after = sys.window_stats();
    assert_eq!(
        after.mismatches, before,
        "interrupt servicing must not diverge the pair"
    );
    assert_eq!(after.failures, 0);
}

//! Race-kernel semantics and kernel-suite determinism.
//!
//! The assembly kernels exist to prove the frontend feeds the paper's
//! machinery, not just single-threaded replay. Three properties gate that:
//!
//! 1. **Race semantics** — the multi-threaded kernels (and only they)
//!    produce nonzero `input_incoherence` under Reunion's relaxed input
//!    replication; under Strict (fully serialized input replication — the
//!    mute observes exactly the vocal's load values) every kernel is
//!    incoherence-free by construction.
//! 2. **Engine and schedule determinism** — the kernel grid's report is
//!    byte-identical between dense and skip engines and between serial and
//!    parallel execution, like every other gated artifact.
//! 3. **Obs-block invariance** — with observability on, the tick-recorded
//!    histograms (check latency, stall episodes, incoherence gaps) agree
//!    exactly between engines on kernel workloads.

use reunion_core::{measure, Engine, ExecutionMode, ObsConfig, SampleConfig, SystemConfig};
use reunion_sim::{ExperimentGrid, Runner};
use reunion_workloads::{kernel_suite, Workload};

/// The kernels with genuine shared-memory races.
const RACY: [&str; 2] = ["spin_histogram", "flag_ring"];

fn sample() -> SampleConfig {
    SampleConfig {
        warmup: 6_000,
        window: 6_000,
        windows: 2,
    }
}

/// Relaxed input replication sees the races; serialized replication and
/// raceless kernels see none.
#[test]
fn racy_kernels_produce_incoherence_under_reunion_only() {
    for w in kernel_suite() {
        let racy = RACY.contains(&w.name());

        let reunion = measure(
            &SystemConfig::kernel_pair(ExecutionMode::Reunion),
            &w,
            &sample(),
        );
        if racy {
            assert!(
                reunion.totals.input_incoherence > 0,
                "{}: a racy kernel must trip input incoherence under Reunion",
                w.name()
            );
        } else {
            assert_eq!(
                reunion.totals.input_incoherence,
                0,
                "{}: a single-threaded kernel has no remote writers to race with",
                w.name()
            );
        }

        let strict = measure(
            &SystemConfig::kernel_pair(ExecutionMode::Strict),
            &w,
            &sample(),
        );
        assert_eq!(
            strict.totals.input_incoherence,
            0,
            "{}: fully serialized input replication cannot diverge",
            w.name()
        );
    }
}

fn dense_base(mode: ExecutionMode) -> SystemConfig {
    let mut cfg = SystemConfig::kernel_pair(mode);
    cfg.engine = Engine::Dense;
    cfg
}

fn skip_base(mode: ExecutionMode) -> SystemConfig {
    let mut cfg = SystemConfig::kernel_pair(mode);
    cfg.engine = Engine::Skip;
    cfg
}

fn kernel_grid(base: fn(ExecutionMode) -> SystemConfig) -> ExperimentGrid {
    ExperimentGrid::builder("kernels_det", "kernel determinism grid")
        .base(base)
        .sample(sample())
        .workloads(vec![
            Workload::by_name("spin_histogram").unwrap(),
            Workload::by_name("crc32").unwrap(),
        ])
        .modes(&[ExecutionMode::Strict, ExecutionMode::Reunion])
        .build()
}

/// The kernel report is byte-identical between engines and schedules — the
/// same parity contract `BENCH_kernels.json` is gated on in CI.
#[test]
fn kernel_report_is_byte_identical_between_engines_and_schedules() {
    let dense = Runner::serial().run(&kernel_grid(dense_base)).to_json();
    let skip = Runner::serial().run(&kernel_grid(skip_base)).to_json();
    assert_eq!(
        dense, skip,
        "dense and skip engines must emit identical bytes"
    );
    let parallel = Runner::with_threads(4)
        .run(&kernel_grid(skip_base))
        .to_json();
    assert_eq!(
        skip, parallel,
        "serial and parallel runs must emit identical bytes"
    );
}

/// Tick-recorded observability agrees exactly between engines on the racy
/// kernels — check latency, stall episodes, incoherence gaps and the
/// bounded event trace.
#[test]
fn kernel_obs_blocks_are_engine_invariant() {
    for name in RACY {
        let workload = Workload::by_name(name).unwrap();
        let mut cfg = SystemConfig::kernel_pair(ExecutionMode::Reunion);
        cfg.obs = ObsConfig {
            enabled: true,
            trace_cap: 64,
        };

        cfg.engine = Engine::Dense;
        let dense = measure(&cfg, &workload, &sample());
        cfg.engine = Engine::Skip;
        let skip = measure(&cfg, &workload, &sample());

        let d = dense.obs.as_ref().expect("obs enabled");
        let s = skip.obs.as_ref().expect("obs enabled");
        assert_eq!(d.check_latency, s.check_latency, "{name}: check latency");
        assert_eq!(d.stall_episodes, s.stall_episodes, "{name}: stall episodes");
        assert_eq!(
            d.incoherence_gaps, s.incoherence_gaps,
            "{name}: incoherence gaps"
        );
        assert_eq!(d.trace_events, s.trace_events, "{name}: trace counts");
        assert_eq!(dense.trace, skip.trace, "{name}: trace contents");
        assert!(
            d.incoherence_gaps.count() > 0,
            "{name}: a racy kernel must record incoherence gaps"
        );
    }
}

//! The observability layer's load-bearing guarantees.
//!
//! Three properties gate the layer:
//!
//! 1. **Determinism is preserved with observability on** — serial,
//!    parallel and shard-merged runs of an obs-enabled grid produce
//!    byte-identical reports, exactly as they do with it off.
//! 2. **Engine invariance** — `check_latency`, `stall_episodes` and
//!    `incoherence_gaps` (and the bounded event trace) are recorded only
//!    inside ticks, so dense and skip engines must agree on them exactly;
//!    only `skip_runs`/`skipped_cycles` may (must) differ.
//! 3. **Default-off byte-stability** — a run without observability emits
//!    no `observability` block at all, keeping pre-existing artifacts
//!    byte-identical.
//!
//! Randomized cases are seeded by `REUNION_PROP_SEED` (a u64; default
//! below), never by wall-clock time, so failures replay exactly.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

use reunion_core::{
    measure, Engine, ExecutionMode, ObsConfig, ObsReport, SampleConfig, SystemConfig,
};
use reunion_kernel::SimRng;
use reunion_sim::{
    manifest_progress_from_text, measure_cell, merge_manifests, ExperimentGrid, ManifestHeader,
    Runner, ShardManifest, ShardSpec,
};
use reunion_workloads::{suite, Workload};

const DEFAULT_SEED: u64 = 0xE16_16E5;

fn prop_seed() -> u64 {
    std::env::var("REUNION_PROP_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_SEED)
}

/// A fresh scratch directory per test invocation (std-only; the build
/// environment has no tempfile crate).
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        static SEQ: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "reunion-obs-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// The observability configuration under test. Grids inject it through
/// [`reunion_sim::GridBuilder::observability`] (the grid-level overlay
/// stamps every cell), direct `measure` calls through [`obs_base`] —
/// no environment mutation either way, so parallel test threads cannot
/// race.
const OBS_ON: ObsConfig = ObsConfig {
    enabled: true,
    trace_cap: 64,
};

/// Base config with the observability layer switched on programmatically.
fn obs_base(mode: ExecutionMode) -> SystemConfig {
    SystemConfig::small_test(mode).with_observability(OBS_ON)
}

fn small_sample() -> SampleConfig {
    SampleConfig {
        warmup: 5_000,
        window: 5_000,
        windows: 2,
    }
}

fn obs_grid(id: &str) -> ExperimentGrid {
    ExperimentGrid::builder(id, "observability property grid")
        .observability(OBS_ON)
        .base(SystemConfig::small_test)
        .sample(small_sample())
        .workloads(vec![
            Workload::by_name("sparse").unwrap(),
            Workload::by_name("moldyn").unwrap(),
        ])
        .modes(&[ExecutionMode::Strict, ExecutionMode::Reunion])
        .build()
}

/// With observability on, the report carries the block — and serial vs
/// parallel execution still produces byte-identical JSON.
#[test]
fn obs_enabled_reports_are_deterministic_and_carry_the_block() {
    let grid = obs_grid("obsdet");
    let serial = Runner::serial().run(&grid).to_json();
    let parallel = Runner::with_threads(4).run(&grid).to_json();
    assert_eq!(serial, parallel);
    assert!(
        serial.contains("\"observability\""),
        "obs-enabled report must carry the observability block"
    );
    assert!(serial.contains("\"check_latency\""));
    assert!(serial.contains("\"stall_episodes\""));
    assert!(serial.contains("\"skip_runs\""));
    assert!(serial.contains("\"incoherence_gaps\""));
}

/// Obs-off output is byte-identical to the pre-observability schema: no
/// `observability` key anywhere in the report.
#[test]
fn obs_disabled_reports_have_no_observability_block() {
    let grid = ExperimentGrid::builder("obsoff", "default-off schema stability")
        .base(SystemConfig::small_test)
        .sample(small_sample())
        .workloads(vec![Workload::by_name("sparse").unwrap()])
        .modes(&[ExecutionMode::Reunion])
        .build();
    let json = Runner::serial().run(&grid).to_json();
    assert!(!json.contains("\"observability\""));
}

/// Sharding an obs-enabled grid and merging the manifests reproduces the
/// single-process report byte for byte — the histogram serialization
/// round-trips exactly through the manifest records.
#[test]
fn obs_enabled_shard_merge_is_byte_identical() {
    let grid = obs_grid("obsshard");
    let expected = Runner::serial().run(&grid).to_json();
    let scratch = Scratch::new("merge");
    let mut paths = Vec::new();
    for index in 1..=3usize {
        let outcome = Runner::serial()
            .run_shard(&grid, ShardSpec::new(index, 3), &scratch.0)
            .expect("shard run");
        paths.push(outcome.manifest_path);
    }
    let merged = merge_manifests(&paths).expect("complete partition");
    assert_eq!(merged.to_json(), expected);
}

/// A manifest whose header declares observability exposes the merged
/// [`ObsReport`] through `ShardProgress` — the summary the dispatcher
/// streams while a campaign runs.
#[test]
fn manifest_progress_aggregates_obs_summaries() {
    let grid = obs_grid("obsprog");
    let scratch = Scratch::new("progress");
    let header = ManifestHeader {
        id: grid.id().to_string(),
        caption: grid.caption().to_string(),
        shard: ShardSpec::new(1, 1),
        cells: grid.cells().len(),
        sample: *grid.sample(),
        sample_overrides: grid.sample_overrides().to_vec(),
        obs: OBS_ON,
    };
    let mut manifest = ShardManifest::create_or_resume(&scratch.0, header).expect("manifest");
    for (i, cell) in grid.cells().iter().enumerate() {
        let record = measure_cell(&grid, cell);
        manifest.append(i, &record).expect("append");
    }
    let text = std::fs::read_to_string(manifest.path()).expect("manifest text");
    let progress = manifest_progress_from_text(&text).expect("progress");
    assert_eq!(progress.completed, grid.cells().len());
    let obs = progress.obs.expect("header declared observability");
    assert!(
        obs.check_latency.count() > 0,
        "reunion cells must have recorded check round trips"
    );
    assert_eq!(
        obs.check_latency.count(),
        obs.check_latency.buckets().iter().sum::<u64>(),
        "bucket totals must agree with the count"
    );
}

/// Randomized engine-parity property: the tick-recorded histograms and the
/// event trace agree exactly between dense and skip engines; the skip-run
/// summary is the one observability field allowed (required) to differ.
#[test]
fn randomized_obs_is_engine_invariant_where_promised() {
    let mut rng = SimRng::seed_from(prop_seed() ^ 0x0B5E_51DE);
    let mut skip_episodes_total = 0u64;
    for case in 0..10 {
        let mode = if rng.chance(0.5) {
            ExecutionMode::Reunion
        } else {
            ExecutionMode::Strict
        };
        let all = suite();
        let i = (rng.next_u64() % all.len() as u64) as usize;
        let workload = all.into_iter().nth(i).expect("index in range");
        let mut cfg = obs_base(mode);
        cfg.comparison_latency = [0, 10, 20, 40][(rng.next_u64() % 4) as usize];
        cfg.seed = rng.next_u64();

        cfg.engine = Engine::Dense;
        let dense = measure(&cfg, &workload, &small_sample());
        cfg.engine = Engine::Skip;
        let skip = measure(&cfg, &workload, &small_sample());

        let d: &ObsReport = dense.obs.as_ref().expect("obs enabled");
        let s: &ObsReport = skip.obs.as_ref().expect("obs enabled");
        let ctx = format!(
            "case {case}: {mode} {} lat={}",
            workload.name(),
            cfg.comparison_latency
        );
        assert_eq!(d.check_latency, s.check_latency, "{ctx}: check latency");
        assert_eq!(d.stall_episodes, s.stall_episodes, "{ctx}: stall episodes");
        assert_eq!(
            d.incoherence_gaps, s.incoherence_gaps,
            "{ctx}: incoherence gaps"
        );
        assert_eq!(d.trace_events, s.trace_events, "{ctx}: trace counts");
        assert_eq!(d.trace_evicted, s.trace_evicted, "{ctx}: trace evictions");
        assert_eq!(dense.trace, skip.trace, "{ctx}: trace contents");

        assert_eq!(
            d.skip_runs.episodes(),
            0,
            "{ctx}: the dense engine never fast-forwards"
        );
        assert_eq!(d.skipped_cycles, 0, "{ctx}");
        // skipped_cycles is cumulative (warm-up included); skip_runs only
        // cover the measurement windows.
        assert!(s.skipped_cycles >= s.skip_runs.total_cycles(), "{ctx}");
        skip_episodes_total += s.skip_runs.episodes();
    }
    assert!(
        skip_episodes_total > 0,
        "the skip engine never recorded a skip run across the whole grid"
    );
}

/// The check-latency histogram is live on the paper's main configuration:
/// a Reunion pair records one round trip per compared interval, with
/// latencies bounded below by the configured comparison latency.
#[test]
fn check_latency_reflects_comparison_latency() {
    let workload = Workload::by_name("sparse").unwrap();
    let mut cfg = obs_base(ExecutionMode::Reunion);
    cfg.comparison_latency = 20;
    let m = measure(&cfg, &workload, &small_sample());
    let obs = m.obs.expect("obs enabled");
    assert!(obs.check_latency.count() > 0, "intervals were compared");
    // The vocal core's round trip is zero when its partner's fingerprint
    // already crossed the channel (the mute core ran ahead), so only the
    // slow tail is bounded below by the configured comparison latency.
    let max = obs.check_latency.max().expect("non-empty histogram");
    assert!(
        max >= 20,
        "some round trip must wait out the comparison latency (max {max})"
    );
    assert!(!m.trace.is_empty(), "issue/grant events were traced");
}

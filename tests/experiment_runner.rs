//! Cross-layer integration of the experiment-runner subsystem: grids built
//! from the real workload suite, executed serially and in parallel, must
//! agree byte-for-byte — the guarantee the `BENCH_<id>.json` trajectory
//! artifacts rest on.

use reunion_core::{ExecutionMode, SampleConfig, SystemConfig};
use reunion_sim::{ConfigPatch, ExperimentGrid, Metric, Runner};
use reunion_workloads::{suite, Workload};

fn small_sample() -> SampleConfig {
    SampleConfig {
        warmup: 5_000,
        window: 5_000,
        windows: 2,
    }
}

/// A miniature Figure-6-shaped grid over real suite workloads.
fn mini_fig6() -> ExperimentGrid {
    ExperimentGrid::builder("mini_fig6", "latency sweep, test scale")
        .base(SystemConfig::small_test)
        .sample(small_sample())
        .workloads(vec![
            Workload::by_name("ocean").unwrap(),
            Workload::by_name("apache").unwrap(),
        ])
        .modes(&[ExecutionMode::Strict, ExecutionMode::Reunion])
        .patches(vec![
            ConfigPatch::new("lat=0").latency(0),
            ConfigPatch::new("lat=40").latency(40),
        ])
        .build()
}

#[test]
fn parallel_and_serial_grid_runs_are_byte_identical() {
    let grid = mini_fig6();
    let serial = Runner::serial().run(&grid);
    let parallel = Runner::with_threads(8).run(&grid);
    assert_eq!(serial.to_json(), parallel.to_json());
    // Not just the serialization: the structured records agree too.
    assert_eq!(serial, parallel);
}

#[test]
fn report_covers_the_whole_grid_in_order() {
    let grid = mini_fig6();
    let report = Runner::with_threads(4).run(&grid);
    assert_eq!(report.records.len(), 8);
    for (record, cell) in report.records.iter().zip(grid.cells()) {
        assert_eq!(record.workload, cell.workload.name());
        assert_eq!(record.mode, cell.mode);
        assert_eq!(record.patch, cell.patch.label());
        let n = record.normalized().expect("normalized metric");
        assert!(n.baseline.ipc > 0.0, "baseline must make progress");
        assert!(n.normalized_ipc > 0.0, "model must make progress");
    }
}

#[test]
fn latency_hurts_normalized_ipc_on_average() {
    let grid = mini_fig6();
    let report = Runner::from_env().run(&grid);
    let fast = report.mean_normalized_where(ExecutionMode::Reunion, "lat=0", |_| true);
    let slow = report.mean_normalized_where(ExecutionMode::Reunion, "lat=40", |_| true);
    assert!(
        slow < fast + 0.02,
        "40-cycle comparison latency should not beat 0-cycle: {slow} vs {fast}"
    );
}

#[test]
fn static_grid_needs_no_simulation_and_matches_specs() {
    let grid = ExperimentGrid::builder("mini_table2", "static params")
        .metric(Metric::Static)
        .sample(small_sample())
        .workloads(suite())
        .modes(&[ExecutionMode::NonRedundant])
        .build();
    let report = Runner::from_env().run(&grid);
    assert_eq!(report.records.len(), suite().len());
    for (record, workload) in report.records.iter().zip(suite()) {
        let s = record.statics().expect("static outcome");
        assert_eq!(s.private_bytes, workload.spec().private_bytes);
        assert!(s.static_len > 100, "generated programs are nontrivial");
    }
}

#[test]
fn json_artifact_round_trip_shape() {
    let grid = ExperimentGrid::builder("mini_raw", "raw measurement")
        .metric(Metric::Raw)
        .base(SystemConfig::small_test)
        .sample(small_sample())
        .workloads(vec![Workload::by_name("sparse").unwrap()])
        .modes(&[ExecutionMode::Reunion])
        .build();
    let json = Runner::serial().run(&grid).to_json();
    assert!(json.starts_with("{\n"));
    assert!(json.ends_with("}\n"));
    assert!(json.contains("\"id\": \"mini_raw\""));
    assert!(json.contains("\"measurement\""));
    assert!(json.contains("\"workload\": \"sparse\""));
}

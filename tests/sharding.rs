//! Sharded, resumable execution: the byte-identity and crash-recovery
//! guarantees the multi-machine campaign workflow rests on.
//!
//! Property under test: for any `N`-way partition of a grid, running every
//! shard (in any order, on any runner) and merging the manifests produces
//! a report byte-identical to a serial single-process run — and an
//! interrupted shard, resumed, converges to exactly the manifest an
//! uninterrupted run writes.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

use reunion_core::{ExecutionMode, SampleConfig, SystemConfig};
use reunion_sim::{merge_manifests, ConfigPatch, ExperimentGrid, MergeError, Runner, ShardSpec};
use reunion_workloads::Workload;

/// A fresh scratch directory per test invocation (std-only; the build
/// environment has no tempfile crate).
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        static SEQ: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "reunion-sharding-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

fn small_sample() -> SampleConfig {
    SampleConfig {
        warmup: 5_000,
        window: 5_000,
        windows: 2,
    }
}

/// A grid with heterogeneous cells: two workloads, one with a widened
/// sampling override (the `table3` em3d shape), two modes, two patches.
fn grid() -> ExperimentGrid {
    ExperimentGrid::builder("shardprop", "sharding property grid")
        .base(SystemConfig::small_test)
        .sample(small_sample())
        .sample_override("moldyn", small_sample().widened(3))
        .workloads(vec![
            Workload::by_name("sparse").unwrap(),
            Workload::by_name("moldyn").unwrap(),
        ])
        .modes(&[ExecutionMode::Strict, ExecutionMode::Reunion])
        .patches(vec![
            ConfigPatch::new("lat=0").latency(0),
            ConfigPatch::new("lat=20").latency(20),
        ])
        .build()
}

/// The shard-determinism property of the ISSUE: merging any shard
/// partition (N ∈ {1, 2, 3, 8}) of a grid is byte-identical to the serial
/// single-process report — including N = 8 > cell count per shard class,
/// where some shards own very few cells.
#[test]
fn any_partition_merges_byte_identical_to_serial_run() {
    let grid = grid();
    let expected = Runner::serial().run(&grid).to_json();
    for count in [1usize, 2, 3, 8] {
        let scratch = Scratch::new("partition");
        let mut paths = Vec::new();
        // Run shards in reverse order on runners of varying parallelism:
        // neither execution order nor scheduling may leak into the bytes.
        for index in (1..=count).rev() {
            let runner = if index % 2 == 0 {
                Runner::with_threads(3)
            } else {
                Runner::serial()
            };
            let outcome = runner
                .run_shard(&grid, ShardSpec::new(index, count), &scratch.0)
                .expect("shard run");
            assert_eq!(outcome.resumed, 0, "fresh dir: nothing to resume");
            paths.push(outcome.manifest_path);
        }
        let merged = merge_manifests(&paths).expect("complete partition merges");
        assert_eq!(
            merged.to_json(),
            expected,
            "{count}-way partition must reproduce the serial report byte for byte"
        );
    }
}

/// Killing a shard mid-run (simulated by truncating its manifest inside a
/// record line) and re-running resumes the remaining cells and converges
/// to exactly the manifest an uninterrupted serial run writes.
#[test]
fn resume_after_kill_reproduces_the_manifest() {
    let grid = grid();
    let shard = ShardSpec::new(1, 2);

    let clean = Scratch::new("clean");
    let outcome = Runner::serial()
        .run_shard(&grid, shard, &clean.0)
        .expect("clean shard run");
    let clean_bytes = std::fs::read_to_string(&outcome.manifest_path).expect("clean manifest");
    let owned = outcome.owned_cells;
    assert!(owned >= 3, "grid too small to interrupt meaningfully");

    // "Kill" after two completed cells plus a torn half-record: keep the
    // header line, two record lines, and a prefix of the third.
    let lines: Vec<&str> = clean_bytes.lines().collect();
    let mut torn = lines[..3].join("\n");
    torn.push('\n');
    torn.push_str(&lines[3][..lines[3].len() / 2]);
    let killed = Scratch::new("killed");
    let manifest_path = killed.0.join(shard.manifest_file_name("shardprop"));
    std::fs::write(&manifest_path, &torn).expect("write torn manifest");

    let resumed = Runner::serial()
        .run_shard(&grid, shard, &killed.0)
        .expect("resumed shard run");
    assert_eq!(resumed.resumed, 2, "both whole records must be recovered");
    assert_eq!(
        resumed.executed,
        owned - 2,
        "only the torn cell and the never-run cells re-execute"
    );
    let resumed_bytes = std::fs::read_to_string(&resumed.manifest_path).expect("resumed manifest");
    assert_eq!(
        resumed_bytes, clean_bytes,
        "resumed manifest must equal the uninterrupted one byte for byte"
    );
}

/// A manifest left by a *different* experiment (here: another sampling
/// profile) must not be resumed — it is truncated and the shard re-runs
/// from scratch.
#[test]
fn stale_manifest_from_different_profile_is_discarded() {
    let shard = ShardSpec::new(1, 1);
    let scratch = Scratch::new("stale");

    let narrow = grid();
    Runner::serial()
        .run_shard(&narrow, shard, &scratch.0)
        .expect("first run");

    let wide = ExperimentGrid::builder("shardprop", "sharding property grid")
        .base(SystemConfig::small_test)
        .sample(small_sample().widened(2))
        .sample_override("moldyn", small_sample().widened(3))
        .workloads(vec![
            Workload::by_name("sparse").unwrap(),
            Workload::by_name("moldyn").unwrap(),
        ])
        .modes(&[ExecutionMode::Strict, ExecutionMode::Reunion])
        .patches(vec![
            ConfigPatch::new("lat=0").latency(0),
            ConfigPatch::new("lat=20").latency(20),
        ])
        .build();
    let outcome = Runner::serial()
        .run_shard(&wide, shard, &scratch.0)
        .expect("re-run under changed profile");
    assert_eq!(
        outcome.resumed, 0,
        "a manifest from a different profile must not satisfy any cell"
    );
    assert_eq!(outcome.executed, outcome.owned_cells);
    let merged = merge_manifests(&[outcome.manifest_path]).expect("merge");
    assert_eq!(merged.to_json(), Runner::serial().run(&wide).to_json());
}

/// Merging an incomplete partition names the uncovered cells instead of
/// silently producing a short report.
#[test]
fn merging_incomplete_partition_reports_missing_cells() {
    let grid = grid();
    let scratch = Scratch::new("missing");
    let outcome = Runner::serial()
        .run_shard(&grid, ShardSpec::new(1, 2), &scratch.0)
        .expect("shard 1 run");
    match merge_manifests(std::slice::from_ref(&outcome.manifest_path)) {
        Err(MergeError::MissingCells { missing }) => {
            let expected = ShardSpec::new(2, 2).cell_indices(grid.cells().len());
            assert_eq!(missing, expected, "exactly shard 2's cells are missing");
        }
        other => panic!("expected MissingCells, got {other:?}"),
    }
}

/// Overlapping "partitions" (the same shard twice) are rejected rather
/// than double-counted.
#[test]
fn merging_overlapping_shards_is_rejected() {
    let grid = grid();
    let a = Scratch::new("overlap-a");
    let b = Scratch::new("overlap-b");
    let one = Runner::serial()
        .run_shard(&grid, ShardSpec::new(1, 2), &a.0)
        .expect("run in dir a");
    let dup = Runner::serial()
        .run_shard(&grid, ShardSpec::new(1, 2), &b.0)
        .expect("run in dir b");
    match merge_manifests(&[one.manifest_path, dup.manifest_path]) {
        Err(MergeError::DuplicateCell { .. }) => {}
        other => panic!("expected DuplicateCell, got {other:?}"),
    }
}

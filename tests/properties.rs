//! Property-based tests of core invariants (proptest).

use proptest::prelude::*;

use reunion_fingerprint::{Crc, FingerprintUnit, ParityTree, UpdateRecord};
use reunion_isa::{
    alu_compute, atomic_update, AluOp, Addr, AtomicOp, DataMemory, SparseMemory,
};
use reunion_kernel::{Cycle, SimRng};
use reunion_mem::{CacheArray, MemConfig, MemorySystem, Owner, PhantomStrength};

fn arb_alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Xor),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Shl),
        Just(AluOp::Shr),
        Just(AluOp::Mul),
    ]
}

proptest! {
    /// ALU semantics are total and deterministic.
    #[test]
    fn alu_is_deterministic(op in arb_alu_op(), a: u64, b: u64) {
        prop_assert_eq!(alu_compute(op, a, b), alu_compute(op, a, b));
    }

    /// Swap then swap-back restores memory through atomic_update.
    #[test]
    fn swap_round_trips(old: u64, new: u64) {
        let once = atomic_update(AtomicOp::Swap, old, new);
        prop_assert_eq!(once, new);
        prop_assert_eq!(atomic_update(AtomicOp::Swap, once, old), old);
    }

    /// Memory image: the last write to a word wins, regardless of order of
    /// writes to other words.
    #[test]
    fn sparse_memory_last_write_wins(
        writes in prop::collection::vec((0u64..0x1000, any::<u64>()), 1..64)
    ) {
        let mut mem = SparseMemory::new();
        let mut expected = std::collections::HashMap::new();
        for &(addr, value) in &writes {
            let word = Addr::new(addr).word();
            mem.store(word, value);
            expected.insert(word, value);
        }
        for (word, value) in expected {
            prop_assert_eq!(mem.peek(word), value);
        }
    }

    /// Identical update streams always produce matching fingerprints
    /// (no false positives in output comparison).
    #[test]
    fn fingerprints_never_false_positive(
        updates in prop::collection::vec((0u8..32, any::<u64>(), any::<u64>()), 0..100)
    ) {
        let mut a = FingerprintUnit::new(16);
        let mut b = FingerprintUnit::new(16);
        for &(reg, value, addr) in &updates {
            let rec = UpdateRecord::load(reg, value, addr);
            a.absorb(&rec);
            b.absorb(&rec);
        }
        let fa = a.emit();
        let fb = b.emit();
        prop_assert!(fa.matches(&fb));
        prop_assert_eq!(fa.count as usize, updates.len());
    }

    /// A single flipped register value is detected (single-bit coverage of
    /// the time-compressing CRC on whole-record granularity).
    #[test]
    fn fingerprints_detect_single_value_flip(
        prefix in prop::collection::vec(any::<u64>(), 0..20),
        victim: u64,
        bit in 0u32..64,
    ) {
        let mut a = FingerprintUnit::new(16);
        let mut b = FingerprintUnit::new(16);
        for &v in &prefix {
            let rec = UpdateRecord::reg(1, v);
            a.absorb(&rec);
            b.absorb(&rec);
        }
        a.absorb(&UpdateRecord::reg(2, victim));
        b.absorb(&UpdateRecord::reg(2, victim ^ (1 << bit)));
        prop_assert_ne!(a.emit().hash, b.emit().hash);
    }

    /// CRC is linear-feedback: consuming data in two chunks equals one.
    #[test]
    fn crc_chunking_is_associative(data in prop::collection::vec(any::<u8>(), 0..64), split in 0usize..64) {
        let split = split.min(data.len());
        let mut whole = Crc::new_16();
        whole.consume(&data);
        let mut parts = Crc::new_16();
        parts.consume(&data[..split]);
        parts.consume(&data[split..]);
        prop_assert_eq!(whole.value(), parts.value());
    }

    /// Parity trees XOR-fold: compress(a) XOR compress(b) == compress(a^b)
    /// word-wise (linearity, the property the aliasing bound rests on).
    #[test]
    fn parity_tree_is_linear(a: u64, b: u64) {
        let tree = ParityTree::new(16);
        let ca = tree.compress(&[a]);
        let cb = tree.compress(&[b]);
        let cab = tree.compress(&[a ^ b]);
        let folded: Vec<u8> = ca.iter().zip(&cb).map(|(x, y)| x ^ y).collect();
        prop_assert_eq!(folded, cab);
    }

    /// Cache arrays never exceed capacity and always hit what was just
    /// inserted.
    #[test]
    fn cache_capacity_and_presence(lines in prop::collection::vec(0u64..4096, 1..200)) {
        let mut cache: CacheArray<()> = CacheArray::new(64, 4);
        for &line in &lines {
            cache.insert(line, ());
            prop_assert!(cache.contains(line), "inserted line must be present");
            prop_assert!(cache.occupancy() <= 64);
        }
    }

    /// Coherent memory: a vocal store is visible to every vocal reader, and
    /// the mute's phantom-global read at fill time returns the same value.
    #[test]
    fn vocal_store_visibility(addr in (0u64..0x4000).prop_map(|a| a & !7), value: u64) {
        let mut mem = MemorySystem::new(MemConfig::small());
        let v0 = mem.register_l1(Owner::vocal(0));
        let m0 = mem.register_l1(Owner::mute(0));
        let v1 = mem.register_l1(Owner::vocal(1));
        mem.drain_store(Cycle::ZERO, v0, Addr::new(addr), value);
        let remote = mem.load(Cycle::new(500), v1, Addr::new(addr), PhantomStrength::Global);
        prop_assert_eq!(remote.value, value);
        let phantom = mem.load(Cycle::new(500), m0, Addr::new(addr), PhantomStrength::Global);
        prop_assert_eq!(phantom.value, value);
    }

    /// Deterministic replay: the same seed gives the same RNG stream.
    #[test]
    fn rng_replay(seed: u64) {
        let mut a = SimRng::seed_from(seed);
        let mut b = SimRng::seed_from(seed);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}

/// Whole-system determinism: two identically-seeded Reunion systems retire
/// the exact same instruction counts and observe the same incoherence
/// events. (Plain #[test]: running systems under proptest is too slow.)
#[test]
fn whole_system_replay_is_bit_identical() {
    use reunion_core::{CmpSystem, ExecutionMode, SystemConfig};
    use reunion_workloads::Workload;
    let workload = Workload::by_name("moldyn").unwrap();
    let cfg = SystemConfig::small_test(ExecutionMode::Reunion);
    let mut run = |_: ()| {
        let mut sys = CmpSystem::new(&cfg, &workload);
        sys.run(30_000);
        let s = sys.window_stats();
        (s.user_instructions, s.mismatches, s.sync_requests, s.tlb_misses)
    };
    assert_eq!(run(()), run(()));
}

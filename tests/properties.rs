//! Property-based tests of core invariants.
//!
//! The container building this repo has no network access, so instead of
//! `proptest` these use a small deterministic case generator driven by the
//! kernel's own seeded [`SimRng`]: every property is checked against a few
//! hundred pseudo-random cases and the stream is reproducible by seed.

use reunion_fingerprint::{Crc, FingerprintUnit, ParityTree, UpdateRecord};
use reunion_isa::{alu_compute, atomic_update, Addr, AluOp, AtomicOp, DataMemory, SparseMemory};
use reunion_kernel::{Cycle, SimRng};
use reunion_mem::{CacheArray, MemConfig, MemorySystem, Owner, PhantomStrength};

const CASES: usize = 256;

/// Runs `body` against `CASES` deterministic pseudo-random cases.
fn for_cases(seed: u64, mut body: impl FnMut(&mut SimRng)) {
    let mut rng = SimRng::seed_from(seed);
    for _ in 0..CASES {
        body(&mut rng);
    }
}

fn arb_alu_op(rng: &mut SimRng) -> AluOp {
    const OPS: [AluOp; 8] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Xor,
        AluOp::And,
        AluOp::Or,
        AluOp::Shl,
        AluOp::Shr,
        AluOp::Mul,
    ];
    OPS[(rng.next_u64() % OPS.len() as u64) as usize]
}

/// ALU semantics are total and deterministic.
#[test]
fn alu_is_deterministic() {
    for_cases(0xA1_0001, |rng| {
        let op = arb_alu_op(rng);
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert_eq!(alu_compute(op, a, b), alu_compute(op, a, b));
    });
}

/// Swap then swap-back restores memory through atomic_update.
#[test]
fn swap_round_trips() {
    for_cases(0xA1_0002, |rng| {
        let old = rng.next_u64();
        let new = rng.next_u64();
        let once = atomic_update(AtomicOp::Swap, old, new);
        assert_eq!(once, new);
        assert_eq!(atomic_update(AtomicOp::Swap, once, old), old);
    });
}

/// Memory image: the last write to a word wins, regardless of order of
/// writes to other words.
#[test]
fn sparse_memory_last_write_wins() {
    for_cases(0xA1_0003, |rng| {
        let n = 1 + (rng.next_u64() % 63) as usize;
        let mut mem = SparseMemory::new();
        let mut expected = std::collections::HashMap::new();
        for _ in 0..n {
            let addr = Addr::new(rng.next_u64() % 0x1000);
            let value = rng.next_u64();
            mem.store(addr, value);
            expected.insert(addr.word(), (addr, value));
        }
        for (_, (addr, value)) in expected {
            assert_eq!(mem.peek(addr), value);
        }
    });
}

/// Identical update streams always produce matching fingerprints
/// (no false positives in output comparison).
#[test]
fn fingerprints_never_false_positive() {
    for_cases(0xA1_0004, |rng| {
        let n = (rng.next_u64() % 100) as usize;
        let mut a = FingerprintUnit::new(16);
        let mut b = FingerprintUnit::new(16);
        for _ in 0..n {
            let reg = (rng.next_u64() % 32) as u8;
            let rec = UpdateRecord::load(reg, rng.next_u64(), rng.next_u64());
            a.absorb(&rec);
            b.absorb(&rec);
        }
        let fa = a.emit();
        let fb = b.emit();
        assert!(fa.matches(&fb));
        assert_eq!(fa.count as usize, n);
    });
}

/// A single flipped register value is detected (single-bit coverage of
/// the time-compressing CRC on whole-record granularity).
#[test]
fn fingerprints_detect_single_value_flip() {
    for_cases(0xA1_0005, |rng| {
        let prefix_len = (rng.next_u64() % 20) as usize;
        let victim = rng.next_u64();
        let bit = (rng.next_u64() % 64) as u32;
        let mut a = FingerprintUnit::new(16);
        let mut b = FingerprintUnit::new(16);
        for _ in 0..prefix_len {
            let v = rng.next_u64();
            let rec = UpdateRecord::reg(1, v);
            a.absorb(&rec);
            b.absorb(&rec);
        }
        a.absorb(&UpdateRecord::reg(2, victim));
        b.absorb(&UpdateRecord::reg(2, victim ^ (1 << bit)));
        assert_ne!(a.emit().hash, b.emit().hash);
    });
}

/// CRC is linear-feedback: consuming data in two chunks equals one.
#[test]
fn crc_chunking_is_associative() {
    for_cases(0xA1_0006, |rng| {
        let len = (rng.next_u64() % 64) as usize;
        let data: Vec<u8> = (0..len).map(|_| (rng.next_u64() & 0xFF) as u8).collect();
        let split = if len == 0 { 0 } else { (rng.next_u64() as usize) % (len + 1) };
        let mut whole = Crc::new_16();
        whole.consume(&data);
        let mut parts = Crc::new_16();
        parts.consume(&data[..split]);
        parts.consume(&data[split..]);
        assert_eq!(whole.value(), parts.value());
    });
}

/// Parity trees XOR-fold: compress(a) XOR compress(b) == compress(a^b)
/// word-wise (linearity, the property the aliasing bound rests on).
#[test]
fn parity_tree_is_linear() {
    for_cases(0xA1_0007, |rng| {
        let a = rng.next_u64();
        let b = rng.next_u64();
        let tree = ParityTree::new(16);
        let ca = tree.compress(&[a]);
        let cb = tree.compress(&[b]);
        let cab = tree.compress(&[a ^ b]);
        let folded: Vec<u8> = ca.iter().zip(&cb).map(|(x, y)| x ^ y).collect();
        assert_eq!(folded, cab);
    });
}

/// Cache arrays never exceed capacity and always hit what was just
/// inserted.
#[test]
fn cache_capacity_and_presence() {
    for_cases(0xA1_0008, |rng| {
        let n = 1 + (rng.next_u64() % 199) as usize;
        let mut cache: CacheArray<()> = CacheArray::new(64, 4);
        for _ in 0..n {
            let line = rng.next_u64() % 4096;
            cache.insert(line, ());
            assert!(cache.contains(line), "inserted line must be present");
            assert!(cache.occupancy() <= 64);
        }
    });
}

/// Coherent memory: a vocal store is visible to every vocal reader, and
/// the mute's phantom-global read at fill time returns the same value.
#[test]
fn vocal_store_visibility() {
    for_cases(0xA1_0009, |rng| {
        let addr = (rng.next_u64() % 0x4000) & !7;
        let value = rng.next_u64();
        let mut mem = MemorySystem::new(MemConfig::small());
        let v0 = mem.register_l1(Owner::vocal(0));
        let m0 = mem.register_l1(Owner::mute(0));
        let v1 = mem.register_l1(Owner::vocal(1));
        mem.drain_store(Cycle::ZERO, v0, Addr::new(addr), value);
        let remote = mem.load(Cycle::new(500), v1, Addr::new(addr), PhantomStrength::Global);
        assert_eq!(remote.value, value);
        let phantom = mem.load(Cycle::new(500), m0, Addr::new(addr), PhantomStrength::Global);
        assert_eq!(phantom.value, value);
    });
}

/// Deterministic replay: the same seed gives the same RNG stream.
#[test]
fn rng_replay() {
    for_cases(0xA1_000A, |rng| {
        let seed = rng.next_u64();
        let mut a = SimRng::seed_from(seed);
        let mut b = SimRng::seed_from(seed);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    });
}

/// Whole-system determinism: two identically-seeded Reunion systems retire
/// the exact same instruction counts and observe the same incoherence
/// events.
#[test]
fn whole_system_replay_is_bit_identical() {
    use reunion_core::{CmpSystem, ExecutionMode, SystemConfig};
    use reunion_workloads::Workload;
    let workload = Workload::by_name("moldyn").unwrap();
    let cfg = SystemConfig::small_test(ExecutionMode::Reunion);
    let run = |_: ()| {
        let mut sys = CmpSystem::new(&cfg, &workload);
        sys.run(30_000);
        let s = sys.window_stats();
        (s.user_instructions, s.mismatches, s.sync_requests, s.tlb_misses)
    };
    assert_eq!(run(()), run(()));
}

//! Property-based tests of core invariants.
//!
//! The container building this repo has no network access, so instead of
//! `proptest` these use a small deterministic case generator driven by the
//! kernel's own seeded [`SimRng`]: every property is checked against a few
//! hundred pseudo-random cases and the stream is reproducible by seed.

use reunion_fingerprint::{Crc, FingerprintUnit, ParityTree, UpdateRecord};
use reunion_isa::{alu_compute, atomic_update, Addr, AluOp, AtomicOp, DataMemory, SparseMemory};
use reunion_kernel::{Cycle, SimRng};
use reunion_mem::{CacheArray, MemConfig, MemorySystem, Owner, PhantomStrength};

const CASES: usize = 256;

/// Base seed for the randomized case streams: `REUNION_PROP_SEED` when
/// set (same knob as the engine-equivalence suite), a fixed default
/// otherwise — never wall-clock time, so failures replay exactly.
fn prop_seed() -> u64 {
    std::env::var("REUNION_PROP_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0xA1_5EED)
}

/// Runs `body` against `CASES` deterministic pseudo-random cases.
fn for_cases(seed: u64, mut body: impl FnMut(&mut SimRng)) {
    let mut rng = SimRng::seed_from(seed ^ prop_seed());
    for _ in 0..CASES {
        body(&mut rng);
    }
}

fn arb_alu_op(rng: &mut SimRng) -> AluOp {
    const OPS: [AluOp; 8] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Xor,
        AluOp::And,
        AluOp::Or,
        AluOp::Shl,
        AluOp::Shr,
        AluOp::Mul,
    ];
    OPS[(rng.next_u64() % OPS.len() as u64) as usize]
}

/// ALU semantics are total and deterministic.
#[test]
fn alu_is_deterministic() {
    for_cases(0xA1_0001, |rng| {
        let op = arb_alu_op(rng);
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert_eq!(alu_compute(op, a, b), alu_compute(op, a, b));
    });
}

/// Swap then swap-back restores memory through atomic_update.
#[test]
fn swap_round_trips() {
    for_cases(0xA1_0002, |rng| {
        let old = rng.next_u64();
        let new = rng.next_u64();
        let once = atomic_update(AtomicOp::Swap, old, new);
        assert_eq!(once, new);
        assert_eq!(atomic_update(AtomicOp::Swap, once, old), old);
    });
}

/// Memory image: the last write to a word wins, regardless of order of
/// writes to other words.
#[test]
fn sparse_memory_last_write_wins() {
    for_cases(0xA1_0003, |rng| {
        let n = 1 + (rng.next_u64() % 63) as usize;
        let mut mem = SparseMemory::new();
        let mut expected = std::collections::HashMap::new();
        for _ in 0..n {
            let addr = Addr::new(rng.next_u64() % 0x1000);
            let value = rng.next_u64();
            mem.store(addr, value);
            expected.insert(addr.word(), (addr, value));
        }
        for (_, (addr, value)) in expected {
            assert_eq!(mem.peek(addr), value);
        }
    });
}

/// Identical update streams always produce matching fingerprints
/// (no false positives in output comparison).
#[test]
fn fingerprints_never_false_positive() {
    for_cases(0xA1_0004, |rng| {
        let n = (rng.next_u64() % 100) as usize;
        let mut a = FingerprintUnit::new(16);
        let mut b = FingerprintUnit::new(16);
        for _ in 0..n {
            let reg = (rng.next_u64() % 32) as u8;
            let rec = UpdateRecord::load(reg, rng.next_u64(), rng.next_u64());
            a.absorb(&rec);
            b.absorb(&rec);
        }
        let fa = a.emit();
        let fb = b.emit();
        assert!(fa.matches(&fb));
        assert_eq!(fa.count as usize, n);
    });
}

/// A single flipped register value is detected (single-bit coverage of
/// the time-compressing CRC on whole-record granularity).
#[test]
fn fingerprints_detect_single_value_flip() {
    for_cases(0xA1_0005, |rng| {
        let prefix_len = (rng.next_u64() % 20) as usize;
        let victim = rng.next_u64();
        let bit = (rng.next_u64() % 64) as u32;
        let mut a = FingerprintUnit::new(16);
        let mut b = FingerprintUnit::new(16);
        for _ in 0..prefix_len {
            let v = rng.next_u64();
            let rec = UpdateRecord::reg(1, v);
            a.absorb(&rec);
            b.absorb(&rec);
        }
        a.absorb(&UpdateRecord::reg(2, victim));
        b.absorb(&UpdateRecord::reg(2, victim ^ (1 << bit)));
        assert_ne!(a.emit().hash, b.emit().hash);
    });
}

/// CRC is linear-feedback: consuming data in two chunks equals one.
#[test]
fn crc_chunking_is_associative() {
    for_cases(0xA1_0006, |rng| {
        let len = (rng.next_u64() % 64) as usize;
        let data: Vec<u8> = (0..len).map(|_| (rng.next_u64() & 0xFF) as u8).collect();
        let split = if len == 0 {
            0
        } else {
            (rng.next_u64() as usize) % (len + 1)
        };
        let mut whole = Crc::new_16();
        whole.consume(&data);
        let mut parts = Crc::new_16();
        parts.consume(&data[..split]);
        parts.consume(&data[split..]);
        assert_eq!(whole.value(), parts.value());
    });
}

/// Parity trees XOR-fold: compress(a) XOR compress(b) == compress(a^b)
/// word-wise (linearity, the property the aliasing bound rests on).
#[test]
fn parity_tree_is_linear() {
    for_cases(0xA1_0007, |rng| {
        let a = rng.next_u64();
        let b = rng.next_u64();
        let tree = ParityTree::new(16);
        let ca = tree.compress(&[a]);
        let cb = tree.compress(&[b]);
        let cab = tree.compress(&[a ^ b]);
        let folded: Vec<u8> = ca.iter().zip(&cb).map(|(x, y)| x ^ y).collect();
        assert_eq!(folded, cab);
    });
}

/// Cache arrays never exceed capacity and always hit what was just
/// inserted.
#[test]
fn cache_capacity_and_presence() {
    for_cases(0xA1_0008, |rng| {
        let n = 1 + (rng.next_u64() % 199) as usize;
        let mut cache: CacheArray<()> = CacheArray::new(64, 4);
        for _ in 0..n {
            let line = rng.next_u64() % 4096;
            cache.insert(line, ());
            assert!(cache.contains(line), "inserted line must be present");
            assert!(cache.occupancy() <= 64);
        }
    });
}

/// Coherent memory: a vocal store is visible to every vocal reader, and
/// the mute's phantom-global read at fill time returns the same value.
#[test]
fn vocal_store_visibility() {
    for_cases(0xA1_0009, |rng| {
        let addr = (rng.next_u64() % 0x4000) & !7;
        let value = rng.next_u64();
        let mut mem = MemorySystem::new(MemConfig::small());
        let v0 = mem.register_l1(Owner::vocal(0));
        let m0 = mem.register_l1(Owner::mute(0));
        let v1 = mem.register_l1(Owner::vocal(1));
        mem.drain_store(Cycle::ZERO, v0, Addr::new(addr), value);
        let remote = mem.load(
            Cycle::new(500),
            v1,
            Addr::new(addr),
            PhantomStrength::Global,
        );
        assert_eq!(remote.value, value);
        let phantom = mem.load(
            Cycle::new(500),
            m0,
            Addr::new(addr),
            PhantomStrength::Global,
        );
        assert_eq!(phantom.value, value);
    });
}

/// Deterministic replay: the same seed gives the same RNG stream.
#[test]
fn rng_replay() {
    for_cases(0xA1_000A, |rng| {
        let seed = rng.next_u64();
        let mut a = SimRng::seed_from(seed);
        let mut b = SimRng::seed_from(seed);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    });
}

/// Whole-system determinism: two identically-seeded Reunion systems retire
/// the exact same instruction counts and observe the same incoherence
/// events.
#[test]
fn whole_system_replay_is_bit_identical() {
    use reunion_core::{CmpSystem, ExecutionMode, SystemConfig};
    use reunion_workloads::Workload;
    let workload = Workload::by_name("moldyn").unwrap();
    let cfg = SystemConfig::small_test(ExecutionMode::Reunion);
    let run = |_: ()| {
        let mut sys = CmpSystem::new(&cfg, &workload);
        sys.run(30_000);
        let s = sys.window_stats();
        (
            s.user_instructions,
            s.mismatches,
            s.sync_requests,
            s.tlb_misses,
        )
    };
    assert_eq!(run(()), run(()));
}

// ---------------------------------------------------------------------
// Sharing-model invariants.
// ---------------------------------------------------------------------

/// Builds a randomized sharing-heavy spec; `writers` is the bound under
/// test.
fn racy_spec(rng: &mut SimRng, writers: u32) -> reunion_workloads::WorkloadSpec {
    use reunion_workloads::{SharingModel, WorkloadClass, WorkloadSpec};
    WorkloadSpec {
        name: "prop-sharing",
        class: WorkloadClass::Scientific,
        private_bytes: 1 << 20,
        shared_bytes: 1 << 20,
        locks: 16,
        critical_section_len: 6,
        lock_weight: 0.2,
        shared_read_weight: 1.0,
        private_weight: 2.0,
        compute_weight: 2.0,
        trap_weight: 0.01,
        membar_weight: 0.05,
        chase_weight: 0.0,
        store_fraction: 0.3,
        private_stride: 8 * 40503,
        private_step: 24,
        jump_fraction: 0.01,
        shared_stride: 8 * 9,
        lock_sharing: 0.05,
        sharing: SharingModel {
            hot_lines: 16,
            writers,
            hot_weight: 1.0,
            hot_write_fraction: 0.5,
            migratory_weight: 0.5,
            producer_consumer_weight: 0.0,
            lock_contention: 0.1,
            contended_locks: 8,
            burst_len: 2,
            write_period: 8,
            contention_period: 8,
        },
        itlb_miss_per_million: 0,
        segments: 48,
        seed: rng.next_u64(),
    }
}

/// Writer-count bounds: a thread outside the writer bound never stores to
/// the hot shared region, while writer threads eventually do.
#[test]
fn sharing_writer_bounds_respected() {
    use reunion_isa::{FunctionalCore, SparseMemory};
    use reunion_workloads::{generate_program, initial_memory};
    let hot_base = reunion_workloads::HOT_BASE;
    let mut rng = SimRng::seed_from(0xA1_000B);
    for case in 0..12 {
        let writers = 1 + (rng.next_u64() % 3) as u32;
        let spec = racy_spec(&mut rng, writers);
        let hot_bytes = spec.sharing.hot_lines * 64;
        // Readers (thread >= writers) must leave every hot word untouched.
        for thread in [writers as usize, writers as usize + 1] {
            let prog = generate_program(&spec, thread);
            let mut mem = SparseMemory::new();
            for (addr, value) in initial_memory(&spec) {
                mem.poke(addr, value);
            }
            let mut core = FunctionalCore::new();
            core.run(&prog, &mut mem, 150_000);
            for line in 0..spec.sharing.hot_lines {
                let addr = reunion_isa::Addr::new(hot_base + line * 64);
                assert_eq!(
                    mem.peek(addr),
                    0,
                    "case {case}: thread {thread} (bound {writers}) wrote hot {addr:?}"
                );
            }
        }
        // Thread 0 is always inside the bound and must eventually write.
        let prog = generate_program(&spec, 0);
        let mut mem = SparseMemory::new();
        for (addr, value) in initial_memory(&spec) {
            mem.poke(addr, value);
        }
        let mut core = FunctionalCore::new();
        core.run(&prog, &mut mem, 150_000);
        let wrote =
            (0..hot_bytes / 8).any(|i| mem.peek(reunion_isa::Addr::new(hot_base + i * 8)) != 0);
        assert!(
            wrote,
            "case {case}: writer thread 0 never wrote the hot region"
        );
    }
}

/// Incoherence counters are monotone over a run (and mismatches dominate
/// input-incoherence events, which dominate nothing below zero).
#[test]
fn incoherence_counters_are_monotone() {
    use reunion_core::{CmpSystem, ExecutionMode, SystemConfig};
    use reunion_workloads::Workload;
    let workload = Workload::by_name("db2_oltp").unwrap();
    let cfg = SystemConfig::small_test(ExecutionMode::Reunion);
    let mut sys = CmpSystem::new(&cfg, &workload);
    let mut last = sys.window_stats();
    for _ in 0..40 {
        sys.run(1_000);
        let s = sys.window_stats();
        assert!(
            s.mismatches >= last.mismatches,
            "mismatches must not decrease"
        );
        assert!(
            s.input_incoherence >= last.input_incoherence,
            "input_incoherence must not decrease"
        );
        assert!(s.sync_requests >= last.sync_requests);
        assert!(
            s.input_incoherence <= s.mismatches,
            "incoherence events are a subset of mismatches"
        );
        last = s;
    }
}

/// Serial and parallel runs of a sharing-heavy grid produce byte-identical
/// reports (the determinism guard, exercised through the new sharing
/// model's raciest paths).
#[test]
fn sharing_model_reports_serial_parallel_parity() {
    use reunion_core::{ExecutionMode, SampleConfig, SystemConfig};
    use reunion_sim::{ExperimentGrid, Runner};
    use reunion_workloads::Workload;
    let grid = ExperimentGrid::builder("prop-parity", "sharing-model parity")
        .base(SystemConfig::small_test)
        .sample(SampleConfig::quick())
        .workloads(vec![
            Workload::by_name("db2_oltp").unwrap(),
            Workload::by_name("moldyn").unwrap(),
        ])
        .modes(&[ExecutionMode::Strict, ExecutionMode::Reunion])
        .build();
    let serial = Runner::serial().run(&grid).to_json();
    let parallel = Runner::with_threads(4).run(&grid).to_json();
    assert_eq!(serial, parallel, "parallel report must be byte-identical");
}

// ---------------------------------------------------------------------
// Hot-path optimization invariants.
// ---------------------------------------------------------------------

/// The slice-by-8 CRC engine agrees with the bit-serial reference LFSR on
/// random widths, streams and chunkings — the fast fold is pure
/// optimization, never a semantic change.
#[test]
fn slice_by_8_crc_matches_bitwise_reference() {
    use reunion_fingerprint::BitwiseCrc;
    for_cases(0xA1_000C, |rng| {
        let width = 1 + (rng.next_u64() % 32) as u32;
        // Any odd polynomial that fits the width (bit 0 set keeps it a
        // proper CRC generator).
        let mask = if width == 32 {
            u32::MAX
        } else {
            (1u32 << width) - 1
        };
        let poly = ((rng.next_u64() as u32) & mask) | 1;
        let init = (rng.next_u64() as u32) & mask;
        let len = (rng.next_u64() % 48) as usize;
        let data: Vec<u8> = (0..len).map(|_| (rng.next_u64() & 0xFF) as u8).collect();
        let split = if len == 0 {
            0
        } else {
            (rng.next_u64() as usize) % (len + 1)
        };

        let mut fast = Crc::new(width, poly, init);
        fast.consume(&data[..split]);
        fast.consume(&data[split..]);
        let mut reference = BitwiseCrc::new(width, poly, init);
        reference.consume(&data);
        assert_eq!(
            fast.value(),
            reference.value(),
            "width {width} poly {poly:#x} len {len} split {split}"
        );

        // The u64 lane path (the hot one) agrees too.
        let word = rng.next_u64();
        fast.consume_u64(word);
        reference.consume_u64(word);
        assert_eq!(fast.value(), reference.value());
    });
}

/// Workload artifact caching is invisible in every output byte: a grid
/// over cache-less workloads produces a `BENCH` report byte-identical to
/// the cached default's.
#[test]
fn cached_workload_reports_are_byte_identical() {
    use reunion_core::{ExecutionMode, SampleConfig, SystemConfig};
    use reunion_sim::{ExperimentGrid, Runner};
    use reunion_workloads::Workload;
    let names = ["sparse", "apache"];
    let cached: Vec<Workload> = names
        .iter()
        .map(|n| Workload::by_name(n).unwrap())
        .collect();
    let uncached: Vec<Workload> = cached
        .iter()
        .map(|w| Workload::uncached(w.spec().clone()))
        .collect();
    let build = |workloads: Vec<Workload>| {
        ExperimentGrid::builder("prop-cache-parity", "artifact-cache parity")
            .base(SystemConfig::small_test)
            .sample(SampleConfig::quick())
            .workloads(workloads)
            .modes(&[ExecutionMode::Strict, ExecutionMode::Reunion])
            .build()
    };
    let with_cache = Runner::serial().run(&build(cached)).to_json();
    let without_cache = Runner::serial().run(&build(uncached)).to_json();
    assert_eq!(
        with_cache, without_cache,
        "artifact cache must not change any report byte"
    );
}

//! Dispatcher failure paths, end to end with real worker processes.
//!
//! Every test drives `reunion-dispatch` over `LocalProcess` transports
//! launching the `shard_worker` binary (see `src/bin/shard_worker.rs`),
//! whose environment knobs inject the host faults the satellite checklist
//! names: death before the first cell, a stall past the lease, a
//! mid-shard death leaving a partial manifest, and a host that cannot be
//! launched at all. The invariant under test is always the same: the
//! campaign survives, and the merged `BENCH_dispatchtest.json` is
//! byte-identical to a serial in-process run of the same grid.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Duration;

use reunion::testkit::dispatch_grid;
use reunion_dispatch::{
    Attempt, AttemptOutcome, DispatchConfig, DispatchReport, Dispatcher, LocalProcess, Transport,
};
use reunion_sim::{manifest_progress, merge_manifests, MergeError, Runner, ShardSpec};

fn worker_exe() -> String {
    env!("CARGO_BIN_EXE_shard_worker").to_string()
}

/// A fresh scratch directory per test invocation (std-only; the build
/// environment has no tempfile crate).
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        static SEQ: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "reunion-dispatch-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }

    fn host_dir(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }

    fn merge_dir(&self) -> PathBuf {
        self.0.join("merged")
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// The reference artifact every campaign must reproduce byte for byte.
fn expected_json() -> String {
    Runner::serial().run(&dispatch_grid()).to_json()
}

fn base_config(scratch: &Scratch) -> DispatchConfig {
    DispatchConfig::new("dispatchtest", 2, scratch.merge_dir())
        .poll(Duration::from_millis(50))
        .lease(Duration::from_secs(60))
        .max_host_failures(1)
}

fn local_host(scratch: &Scratch, name: &str) -> LocalProcess {
    LocalProcess::new(name, scratch.host_dir(name), vec![worker_exe()])
}

fn assert_merged_byte_identical(report: &DispatchReport) {
    let merged = std::fs::read_to_string(&report.bench_path).expect("merged artifact");
    assert_eq!(
        merged,
        expected_json(),
        "dispatched campaign must reproduce the serial report byte for byte"
    );
}

fn completed_attempt(report: &DispatchReport, shard: usize) -> &Attempt {
    report
        .attempts
        .iter()
        .find(|a| a.shard == shard && matches!(a.outcome, AttemptOutcome::Completed { .. }))
        .unwrap_or_else(|| panic!("shard {shard} must eventually complete"))
}

/// Happy path: a healthy two-host pool splits the campaign and the merge
/// is byte-identical, with no re-dispatches.
#[test]
fn two_host_dispatch_merges_byte_identical() {
    let scratch = Scratch::new("happy");
    let report = Dispatcher::new(
        base_config(&scratch),
        vec![
            (
                Box::new(local_host(&scratch, "alpha")) as Box<dyn Transport>,
                1,
            ),
            (
                Box::new(local_host(&scratch, "beta")) as Box<dyn Transport>,
                1,
            ),
        ],
    )
    .run()
    .expect("healthy campaign");
    assert_eq!(report.redispatches, 0);
    assert!(report.evicted_hosts.is_empty());
    assert_eq!(report.manifest_paths.len(), 2);
    assert_eq!(completed_attempt(&report, 1).seeded, 0);
    assert_merged_byte_identical(&report);
}

/// A host whose worker dies before producing a single cell: the host is
/// evicted and its shard re-dispatched (from scratch — there is nothing
/// to resume) to the remaining pool.
#[test]
fn host_dying_before_first_cell_is_evicted_and_shard_redispatched() {
    let scratch = Scratch::new("die-at-start");
    let report = Dispatcher::new(
        base_config(&scratch),
        vec![
            (
                Box::new(local_host(&scratch, "flaky").env("WORKER_FAIL_AT_START", "1"))
                    as Box<dyn Transport>,
                1,
            ),
            (
                Box::new(local_host(&scratch, "steady")) as Box<dyn Transport>,
                1,
            ),
        ],
    )
    .run()
    .expect("campaign must survive one dying host");
    assert_eq!(report.evicted_hosts, vec!["flaky".to_string()]);
    assert!(report.redispatches >= 1);
    assert!(report
        .attempts
        .iter()
        .any(|a| a.host == "flaky" && matches!(a.outcome, AttemptOutcome::Died { .. })));
    let rescued = completed_attempt(&report, 1);
    assert_eq!(rescued.host, "steady");
    assert_eq!(rescued.seeded, 0, "nothing to resume from an empty host");
    assert_merged_byte_identical(&report);
}

/// A host that cannot even be launched (missing binary standing in for an
/// unreachable machine): the launch failure burns its budget and the
/// whole campaign falls back to the remaining pool.
#[test]
fn unreachable_host_at_startup_falls_back_to_remaining_pool() {
    let scratch = Scratch::new("unreachable");
    let report = Dispatcher::new(
        base_config(&scratch),
        vec![
            (
                Box::new(LocalProcess::new(
                    "ghost",
                    scratch.host_dir("ghost"),
                    vec!["/nonexistent/reunion-worker".to_string()],
                )) as Box<dyn Transport>,
                1,
            ),
            (
                Box::new(local_host(&scratch, "steady")) as Box<dyn Transport>,
                1,
            ),
        ],
    )
    .run()
    .expect("campaign must survive an unreachable host");
    assert_eq!(report.evicted_hosts, vec!["ghost".to_string()]);
    assert!(report
        .attempts
        .iter()
        .any(|a| a.host == "ghost" && matches!(a.outcome, AttemptOutcome::LaunchFailed { .. })));
    assert!(report
        .attempts
        .iter()
        .filter(|a| matches!(a.outcome, AttemptOutcome::Completed { .. }))
        .all(|a| a.host == "steady"));
    assert_merged_byte_identical(&report);
}

/// Runs the stall scenario shared by the lease test and the
/// duplicate-manifest test: the first host completes one cell of shard 1
/// and then wedges; the lease expires, the worker is killed, the host
/// evicted, and the shard re-dispatched — seeded with the partial
/// manifest — to the healthy host.
fn run_stalled_campaign(tag: &str) -> (Scratch, DispatchReport) {
    let scratch = Scratch::new(tag);
    let report = Dispatcher::new(
        base_config(&scratch).lease(Duration::from_secs(2)),
        vec![
            (
                Box::new(local_host(&scratch, "wedged").env("WORKER_STALL_AFTER", "1"))
                    as Box<dyn Transport>,
                1,
            ),
            (
                Box::new(local_host(&scratch, "steady")) as Box<dyn Transport>,
                1,
            ),
        ],
    )
    .run()
    .expect("campaign must survive a wedged host");
    (scratch, report)
}

/// A worker that stops making progress is killed once the lease expires,
/// and the replacement *resumes* the cell the stalled host completed.
#[test]
fn stalled_host_past_lease_is_killed_and_shard_resumed_elsewhere() {
    let (_scratch, report) = run_stalled_campaign("stall");
    assert_eq!(report.evicted_hosts, vec!["wedged".to_string()]);
    assert!(report
        .attempts
        .iter()
        .any(|a| a.host == "wedged" && a.outcome == AttemptOutcome::Stalled));
    let rescued = completed_attempt(&report, 1);
    assert_eq!(rescued.host, "steady");
    assert!(
        rescued.seeded >= 1,
        "the stalled host's completed cell must be resumed, not re-run"
    );
    assert_merged_byte_identical(&report);
}

/// After a re-dispatch, *two* hosts hold a manifest for the same shard —
/// the dead host's partial one and the replacement's complete one. A
/// naive merge of every manifest on disk double-counts; the dispatcher's
/// per-shard collection keeps exactly one complete manifest per shard,
/// so the merge is clean.
#[test]
fn duplicate_manifest_from_redispatched_shard_merges_cleanly() {
    let (scratch, report) = run_stalled_campaign("dup");
    let name = ShardSpec::new(1, 2).manifest_file_name("dispatchtest");
    let partial = scratch.host_dir("wedged").join(&name);
    let complete = scratch.host_dir("steady").join(&name);
    let partial_progress = manifest_progress(&partial).expect("stalled host's manifest survives");
    assert!(
        !partial_progress.is_complete(),
        "the wedged host must have left a partial manifest"
    );
    assert!(manifest_progress(&complete)
        .expect("replacement manifest")
        .is_complete());

    // The naive merge over both copies is exactly the double-count the
    // collector exists to prevent.
    let shard2 = scratch
        .host_dir("steady")
        .join(ShardSpec::new(2, 2).manifest_file_name("dispatchtest"));
    match merge_manifests(&[partial, complete, shard2]) {
        Err(MergeError::DuplicateCell { .. }) => {}
        other => panic!("naive merge must double-count, got {other:?}"),
    }

    // The dispatcher collected one manifest per shard and merged those.
    assert_eq!(report.manifest_paths.len(), 2);
    assert!(merge_manifests(&report.manifest_paths).is_ok());
    assert_merged_byte_identical(&report);
}

/// A worker that dies mid-shard (after two cells) leaves a partial
/// manifest; the re-dispatched attempt is seeded with exactly those
/// cells.
#[test]
fn mid_shard_death_resumes_partial_manifest_on_replacement() {
    let scratch = Scratch::new("mid-death");
    let report = Dispatcher::new(
        base_config(&scratch),
        vec![
            (
                Box::new(local_host(&scratch, "mortal").env("WORKER_EXIT_AFTER", "2"))
                    as Box<dyn Transport>,
                1,
            ),
            (
                Box::new(local_host(&scratch, "steady")) as Box<dyn Transport>,
                1,
            ),
        ],
    )
    .run()
    .expect("campaign must survive a mid-shard death");
    assert_eq!(report.evicted_hosts, vec!["mortal".to_string()]);
    let rescued = completed_attempt(&report, 1);
    assert_eq!(rescued.host, "steady");
    assert_eq!(
        rescued.seeded, 2,
        "both cells completed before the death must be resumed"
    );
    assert_merged_byte_identical(&report);
}

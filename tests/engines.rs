//! Dense ↔ skip engine equivalence.
//!
//! The time-skipping engine must be *observationally identical* to dense
//! cycle stepping: every measured counter, every IPC figure, every byte of
//! a `BENCH_<id>.json` report. These tests drive randomized grids of
//! (workload, mode, latency, seed) points through both engines and demand
//! exact equality — plus a nonzero skip count, so the skip engine cannot
//! trivially pass by degenerating into dense stepping.
//!
//! The case stream is seeded by `REUNION_PROP_SEED` (a u64; default below),
//! never by wall-clock time, so failures replay exactly.

use reunion_core::{
    measure, normalized_ipc, Engine, ExecutionMode, Measurement, SampleConfig, SystemConfig,
};
use reunion_kernel::SimRng;
use reunion_workloads::{kernel_suite, suite, Workload};

const DEFAULT_SEED: u64 = 0xE16_16E5;

fn prop_seed() -> u64 {
    std::env::var("REUNION_PROP_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_SEED)
}

/// The full deterministic face of a [`Measurement`], floats compared by
/// bit pattern. `skipped_cycles` is deliberately excluded: it is the one
/// field allowed (required, even) to differ between engines.
fn face(m: &Measurement) -> (u64, u64, reunion_core::SystemStats, usize, &'static str) {
    (
        m.ipc.to_bits(),
        m.ipc_ci95.to_bits(),
        m.totals,
        m.windows,
        m.workload,
    )
}

fn random_config(rng: &mut SimRng, mode: ExecutionMode) -> SystemConfig {
    let mut cfg = SystemConfig::small_test(mode);
    cfg.comparison_latency = [0, 10, 20, 40][(rng.next_u64() % 4) as usize];
    cfg.seed = rng.next_u64();
    cfg
}

fn random_workload(rng: &mut SimRng) -> Workload {
    let all = suite();
    let i = (rng.next_u64() % all.len() as u64) as usize;
    all.into_iter().nth(i).expect("index in range")
}

fn sample() -> SampleConfig {
    SampleConfig {
        warmup: 6_000,
        window: 6_000,
        windows: 2,
    }
}

/// Randomized grid: raw measurements agree exactly between engines for
/// redundant and non-redundant configurations alike, and the skip engine
/// actually skips.
#[test]
fn randomized_measurements_are_engine_invariant() {
    let mut rng = SimRng::seed_from(prop_seed());
    let mut total_skipped = 0u64;
    for case in 0..12 {
        let mode = ExecutionMode::ALL[(rng.next_u64() % 3) as usize];
        let workload = random_workload(&mut rng);
        let mut cfg = random_config(&mut rng, mode);

        cfg.engine = Engine::Dense;
        let dense = measure(&cfg, &workload, &sample());
        cfg.engine = Engine::Skip;
        let skip = measure(&cfg, &workload, &sample());

        assert_eq!(
            face(&dense),
            face(&skip),
            "case {case}: {mode} {} lat={} diverged between engines",
            workload.name(),
            cfg.comparison_latency,
        );
        assert_eq!(dense.skipped_cycles, 0, "dense never goes quiescent here");
        total_skipped += skip.skipped_cycles;
    }
    assert!(
        total_skipped > 0,
        "the skip engine never skipped a cycle across the whole grid"
    );
}

/// Randomized matched pairs: the normalized-IPC path (model and baseline
/// systems, window-by-window ratios) is engine-invariant too.
#[test]
fn randomized_normalized_pairs_are_engine_invariant() {
    let mut rng = SimRng::seed_from(prop_seed() ^ 0x5CA1_AB1E);
    for case in 0..6 {
        let mode = if rng.chance(0.5) {
            ExecutionMode::Reunion
        } else {
            ExecutionMode::Strict
        };
        let workload = random_workload(&mut rng);
        let mut cfg = random_config(&mut rng, mode);

        cfg.engine = Engine::Dense;
        let dense = normalized_ipc(&cfg, &workload, &sample());
        cfg.engine = Engine::Skip;
        let skip = normalized_ipc(&cfg, &workload, &sample());

        assert_eq!(
            dense.normalized_ipc.to_bits(),
            skip.normalized_ipc.to_bits(),
            "case {case}: normalized IPC diverged"
        );
        assert_eq!(dense.ci95.to_bits(), skip.ci95.to_bits());
        assert_eq!(face(&dense.model), face(&skip.model));
        assert_eq!(face(&dense.baseline), face(&skip.baseline));
    }
}

/// The real-code kernel workloads (`asm/`) obey the same invariance
/// contract as the synthetic suite: every measured counter agrees exactly
/// between engines, across modes and comparison latencies.
#[test]
fn kernel_measurements_are_engine_invariant() {
    let mut rng = SimRng::seed_from(prop_seed() ^ 0x6E26_E150);
    let kernels = kernel_suite();
    for case in 0..8 {
        let mode = ExecutionMode::ALL[(rng.next_u64() % 3) as usize];
        let workload = kernels[(rng.next_u64() % kernels.len() as u64) as usize].clone();
        let mut cfg = random_config(&mut rng, mode);

        cfg.engine = Engine::Dense;
        let dense = measure(&cfg, &workload, &sample());
        cfg.engine = Engine::Skip;
        let skip = measure(&cfg, &workload, &sample());

        assert_eq!(
            face(&dense),
            face(&skip),
            "case {case}: {mode} {} lat={} diverged between engines",
            workload.name(),
            cfg.comparison_latency,
        );
    }
}

/// Serializing-heavy configuration (software TLB handlers force frequent
/// full check round trips): the `serializing_stall_cycles` counter — which
/// dense execution accumulates one stalled cycle at a time — survives time
/// skipping exactly.
#[test]
fn serializing_stall_counters_survive_skipping() {
    let workload = Workload::by_name("db2_oltp").expect("suite workload");
    let mut cfg = SystemConfig::small_test(ExecutionMode::Reunion);
    cfg.tlb = reunion_cpu::TlbMode::Software;
    cfg.comparison_latency = 20;

    cfg.engine = Engine::Dense;
    let dense = measure(&cfg, &workload, &sample());
    cfg.engine = Engine::Skip;
    let skip = measure(&cfg, &workload, &sample());

    assert!(
        dense.totals.serializing_stall_cycles > 0,
        "config must exercise serializing stalls"
    );
    assert_eq!(face(&dense), face(&skip));
}

/// The scaling study's contention models — banked-L2 arbitration behind
/// bounded crossbar ports and a shared check bus — keep the engine
/// invariance contract at many-pair machine sizes. Bus grants only happen
/// inside ticked comparison cycles and the arbiter's round-robin cursor
/// only advances on arbitration, so time skipping must not reorder either.
#[test]
fn many_pair_contention_is_engine_invariant() {
    use reunion_mem::MemConfig;
    let workload = Workload::by_name("apache").expect("suite workload");
    for pairs in [8usize, 16] {
        let mut cfg = SystemConfig::small_test(ExecutionMode::Reunion)
            .with_logical_processors(pairs)
            .with_check_bandwidth(2)
            .with_comparison_latency(10)
            .with_mem(
                MemConfig::small()
                    .with_xbar_ports(2)
                    .with_bank_queue_depth(2),
            );

        cfg.engine = Engine::Dense;
        let dense = measure(&cfg, &workload, &sample());
        cfg.engine = Engine::Skip;
        let skip = measure(&cfg, &workload, &sample());

        assert_eq!(
            face(&dense),
            face(&skip),
            "{pairs} pairs under contention diverged between engines"
        );
        assert!(
            dense.totals.user_instructions > 0,
            "{pairs}-pair machine must make forward progress on a saturated bus"
        );
    }
}

/// Serial ↔ intra-cell-parallel byte-identity at 8, 16 and 32 pairs with
/// every contention knob on — banked L2 behind bounded crossbar ports, a
/// shared check bus, observability collecting — under both engines. The
/// compute/commit split moves only memory-free work onto worker threads
/// and commits serially in logical-processor order, so *everything* must
/// agree: every counter, the observability histograms, the retained trace,
/// and even `skipped_cycles` (same engine on both sides). Worker counts
/// are drawn from the seeded stream so reruns replay exactly.
#[test]
fn intracell_parallel_compute_is_byte_identical() {
    use reunion_core::ObsConfig;
    use reunion_mem::MemConfig;
    let mut rng = SimRng::seed_from(prop_seed() ^ 0x1AC3_11E1);
    let workload = Workload::by_name("apache").expect("suite workload");
    let small = SampleConfig {
        warmup: 3_000,
        window: 3_000,
        windows: 2,
    };
    for pairs in [8usize, 16, 32] {
        for engine in [Engine::Dense, Engine::Skip] {
            let mut cfg = SystemConfig::small_test(ExecutionMode::Reunion)
                .with_logical_processors(pairs)
                .with_check_bandwidth(2)
                .with_comparison_latency(10)
                .with_mem(
                    MemConfig::small()
                        .with_xbar_ports(2)
                        .with_bank_queue_depth(2),
                );
            cfg.engine = engine;
            cfg.obs = ObsConfig {
                enabled: true,
                trace_cap: 8,
            };
            cfg.seed = rng.next_u64();

            cfg.intracell_threads = 0;
            let serial = measure(&cfg, &workload, &small);
            cfg.intracell_threads = 2 + (rng.next_u64() % 4) as usize;
            let parallel = measure(&cfg, &workload, &small);

            assert_eq!(
                face(&serial),
                face(&parallel),
                "{pairs} pairs under {engine}: intra-cell compute diverged"
            );
            assert_eq!(serial.skipped_cycles, parallel.skipped_cycles);
            assert_eq!(serial.obs, parallel.obs, "{pairs} pairs {engine}: obs");
            assert_eq!(
                serial.trace, parallel.trace,
                "{pairs} pairs {engine}: trace"
            );
            assert!(
                serial.totals.user_instructions > 0,
                "{pairs}-pair machine must make forward progress"
            );
        }
    }
}

/// The skip engine clips at `run` boundaries, so arbitrary window layouts
/// — including a window cut mid-skip — see identical per-window stats.
#[test]
fn window_clipping_preserves_per_window_stats() {
    use reunion_core::CmpSystem;
    let workload = Workload::by_name("ocean").expect("suite workload");
    let mut cfg = SystemConfig::small_test(ExecutionMode::Reunion);

    let windows = [3_000u64, 123, 7_777, 41, 2_500];
    let mut per_window = Vec::new();
    for engine in [Engine::Dense, Engine::Skip] {
        cfg.engine = engine;
        let mut sys = CmpSystem::new(&cfg, &workload);
        sys.run(5_000);
        let mut stats = Vec::new();
        for w in windows {
            sys.begin_window();
            sys.run(w);
            stats.push(sys.window_stats());
        }
        assert_eq!(sys.now().as_u64(), 5_000 + windows.iter().sum::<u64>());
        per_window.push(stats);
    }
    assert_eq!(per_window[0], per_window[1]);
}

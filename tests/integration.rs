//! Cross-crate integration tests: whole systems built from the public API.

use reunion_core::{measure, normalized_ipc, ExecutionMode, SampleConfig, SystemConfig};
use reunion_workloads::{suite, Workload, WorkloadClass};

fn quick() -> SampleConfig {
    SampleConfig {
        warmup: 8_000,
        window: 8_000,
        windows: 2,
    }
}

#[test]
fn every_workload_runs_under_every_mode() {
    for workload in suite() {
        for mode in ExecutionMode::ALL {
            let cfg = SystemConfig::small_test(mode);
            let m = measure(&cfg, &workload, &quick());
            assert!(
                m.ipc > 0.01,
                "{} under {mode} made no progress (ipc {})",
                workload.name(),
                m.ipc
            );
            assert_eq!(
                m.totals.failures,
                0,
                "{} under {mode} reported failures without injected errors",
                workload.name()
            );
        }
    }
}

#[test]
fn strict_never_observes_input_incoherence() {
    for workload in suite() {
        let cfg = SystemConfig::small_test(ExecutionMode::Strict);
        let m = measure(&cfg, &workload, &quick());
        assert_eq!(
            m.totals.mismatches,
            0,
            "{}: strict input replication is immune to incoherence",
            workload.name()
        );
    }
}

#[test]
fn redundant_execution_never_beats_the_baseline_by_much() {
    // Redundancy costs performance; allow a little sampling noise.
    for name in ["apache", "moldyn", "db2_dss_q2"] {
        let workload = Workload::by_name(name).unwrap();
        let n = normalized_ipc(
            &SystemConfig::small_test(ExecutionMode::Reunion),
            &workload,
            &quick(),
        );
        assert!(
            n.normalized_ipc < 1.10,
            "{name}: reunion normalized {:.3} implausibly above baseline",
            n.normalized_ipc
        );
        assert!(
            n.normalized_ipc > 0.25,
            "{name}: reunion normalized {:.3} implausibly slow",
            n.normalized_ipc
        );
    }
}

#[test]
fn comparison_latency_monotonically_hurts_strict() {
    let workload = Workload::by_name("db2_oltp").unwrap();
    let mut at_zero = SystemConfig::small_test(ExecutionMode::Strict);
    at_zero.comparison_latency = 0;
    let mut at_forty = at_zero.clone();
    at_forty.comparison_latency = 40;
    let fast = normalized_ipc(&at_zero, &workload, &quick());
    let slow = normalized_ipc(&at_forty, &workload, &quick());
    assert!(
        fast.normalized_ipc >= slow.normalized_ipc - 0.03,
        "latency 0 ({:.3}) must not lose to latency 40 ({:.3})",
        fast.normalized_ipc,
        slow.normalized_ipc
    );
}

#[test]
fn weaker_phantom_strengths_increase_incoherence() {
    use reunion_mem::PhantomStrength;
    let workload = Workload::by_name("db2_oltp").unwrap();
    let mut rates = Vec::new();
    for strength in PhantomStrength::ALL {
        let mut cfg = SystemConfig::small_test(ExecutionMode::Reunion);
        cfg.phantom = strength;
        let m = measure(&cfg, &workload, &quick());
        rates.push((strength, m.incoherence_per_million()));
    }
    // ALL is ordered weakest (Null) to strongest (Global).
    assert!(
        rates[0].1 >= rates[2].1,
        "null ({:.1}) must be at least as incoherent as global ({:.1})",
        rates[0].1,
        rates[2].1
    );
    assert!(
        rates[0].1 > 100.0,
        "null phantom must cause frequent incoherence, got {:.1}/1M",
        rates[0].1
    );
}

#[test]
fn software_tlb_serializes_more_than_hardware() {
    use reunion_cpu::TlbMode;
    let workload = Workload::by_name("oracle_oltp").unwrap();
    let mut hw = SystemConfig::small_test(ExecutionMode::Reunion);
    hw.comparison_latency = 40;
    let mut sw = hw.clone();
    sw.tlb = TlbMode::Software;
    let hw_r = normalized_ipc(&hw, &workload, &quick());
    let sw_r = normalized_ipc(&sw, &workload, &quick());
    assert!(
        sw_r.normalized_ipc <= hw_r.normalized_ipc + 0.02,
        "software TLB ({:.3}) must not outperform hardware TLB ({:.3})",
        sw_r.normalized_ipc,
        hw_r.normalized_ipc
    );
}

#[test]
fn sequential_consistency_is_expensive_under_checking() {
    use reunion_cpu::Consistency;
    let workload = Workload::by_name("apache").unwrap();
    let mut tso = SystemConfig::small_test(ExecutionMode::Reunion);
    tso.comparison_latency = 40;
    let mut sc = tso.clone();
    sc.consistency = Consistency::Sc;
    let tso_r = normalized_ipc(&tso, &workload, &quick());
    let sc_r = normalized_ipc(&sc, &workload, &quick());
    assert!(
        sc_r.normalized_ipc < tso_r.normalized_ipc,
        "SC ({:.3}) must lose to TSO ({:.3}) at 40-cycle latency",
        sc_r.normalized_ipc,
        tso_r.normalized_ipc
    );
}

#[test]
fn fingerprint_interval_one_vs_fifty_is_close() {
    let workload = Workload::by_name("sparse").unwrap();
    let mut one = SystemConfig::small_test(ExecutionMode::Reunion);
    one.fingerprint_interval = 1;
    let mut fifty = one.clone();
    fifty.fingerprint_interval = 50;
    let r1 = normalized_ipc(&one, &workload, &quick());
    let r50 = normalized_ipc(&fifty, &workload, &quick());
    assert!(
        (r1.normalized_ipc - r50.normalized_ipc).abs() < 0.15,
        "interval 1 ({:.3}) vs 50 ({:.3}) should be close (§4.3)",
        r1.normalized_ipc,
        r50.normalized_ipc
    );
}

#[test]
fn class_composition_is_stable() {
    let all = suite();
    assert_eq!(all.len(), 11);
    assert_eq!(
        all.iter()
            .filter(|w| w.class() == WorkloadClass::Scientific)
            .count(),
        4
    );
}

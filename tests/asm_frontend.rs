//! Differential battery for the assembly frontend.
//!
//! The parser and printer are inverses, proven three ways: the shipped
//! kernels round-trip through print→parse to the exact parsed image (and
//! the printed text reaches a fixpoint), seeded random programs built from
//! the canonical [`Instruction`] constructors survive print→parse to
//! equality, and the synthetic generator's programs — the other producer
//! of `Program` values in the tree — round-trip too. Malformed inputs are
//! rejected with precise spans, never panics.
//!
//! The random stream is seeded by `REUNION_PROP_SEED` (default below),
//! never by wall-clock time, so failures replay exactly.

use reunion_isa::asm::{self, AsmErrorKind, Span};
use reunion_isa::{AluOp, AtomicOp, BranchCond, Instruction, Program, RegId, NUM_REGS};
use reunion_kernel::SimRng;
use reunion_workloads::{suite, KERNEL_SOURCES};

const DEFAULT_SEED: u64 = 0xE16_16E5;

fn prop_seed() -> u64 {
    std::env::var("REUNION_PROP_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_SEED)
}

/// Every shipped kernel parses, and print→parse is the identity on the
/// parsed image — with the printed text itself a fixpoint (printing the
/// re-parsed image reproduces it byte for byte).
#[test]
fn shipped_kernels_reach_a_print_parse_fixpoint() {
    for &(name, text) in KERNEL_SOURCES.iter() {
        let image = asm::parse_image(text)
            .unwrap_or_else(|e| panic!("{name}: shipped kernel must parse: {e}"));
        assert_eq!(image.name(), name, "image name must match the file");
        let printed = asm::print_image(&image);
        let reparsed = asm::parse_image(&printed)
            .unwrap_or_else(|e| panic!("{name}: printed form must re-parse: {e}"));
        assert_eq!(reparsed, image, "{name}: print→parse must be identity");
        assert_eq!(
            asm::print_image(&reparsed),
            printed,
            "{name}: printed text must be a fixpoint"
        );
    }
}

fn random_reg(rng: &mut SimRng) -> RegId {
    RegId::new((rng.next_u64() % NUM_REGS as u64) as u8)
}

fn random_inst(rng: &mut SimRng, len: usize) -> Instruction {
    let target = (rng.next_u64() % len as u64) as usize;
    let imm = rng.next_u64() as i64;
    let alu = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Xor,
        AluOp::And,
        AluOp::Or,
        AluOp::Shl,
        AluOp::Shr,
        AluOp::Mul,
    ][(rng.next_u64() % 8) as usize];
    let cond = [BranchCond::Eqz, BranchCond::Nez, BranchCond::Ltz][(rng.next_u64() % 3) as usize];
    match rng.next_u64() % 13 {
        0 => Instruction::nop(),
        1 => Instruction::halt(),
        2 => Instruction::load_imm(random_reg(rng), imm),
        3 => Instruction::alu(alu, random_reg(rng), random_reg(rng), random_reg(rng)),
        4 => Instruction::alu_imm(alu, random_reg(rng), random_reg(rng), imm),
        5 => Instruction::load(random_reg(rng), random_reg(rng), imm),
        6 => Instruction::store(random_reg(rng), random_reg(rng), imm),
        7 => Instruction::branch(cond, random_reg(rng), target),
        8 => Instruction::jump(target),
        9 => Instruction::atomic(
            if rng.chance(0.5) {
                AtomicOp::Swap
            } else {
                AtomicOp::FetchAdd
            },
            random_reg(rng),
            random_reg(rng),
            random_reg(rng),
            imm,
        ),
        10 => Instruction::membar(),
        11 => Instruction::trap(),
        _ => Instruction::mmu_op(rng.next_u64() >> 32),
    }
}

/// 100 seeded random programs — every canonical instruction shape, full
/// i64 immediates, random entry points — survive print→parse to equality,
/// and the printed text is byte-stable across the round trip.
#[test]
fn random_programs_round_trip_to_byte_equality() {
    let mut rng = SimRng::seed_from(prop_seed() ^ 0xA53_F00D);
    for case in 0..100 {
        let len = 1 + (rng.next_u64() % 40) as usize;
        let code: Vec<Instruction> = (0..len).map(|_| random_inst(&mut rng, len)).collect();
        let entry = (rng.next_u64() % len as u64) as usize;
        let program = Program::with_entry(format!("prop_{case}"), code, entry)
            .expect("generated program is valid");

        let printed = asm::print_program(&program);
        let reparsed = asm::parse_program(&printed)
            .unwrap_or_else(|e| panic!("case {case}: printed program must parse: {e}\n{printed}"));
        assert_eq!(
            reparsed, program,
            "case {case}: print→parse must be identity"
        );
        assert_eq!(
            asm::print_program(&reparsed),
            printed,
            "case {case}: printed text must be byte-stable"
        );
    }
}

/// The synthetic generator is the other producer of `Program` values; its
/// output must stay within the canonical shapes the printer handles.
#[test]
fn generator_programs_round_trip() {
    for w in suite() {
        for thread in 0..2 {
            let program = w.program(thread);
            let reparsed = asm::parse_program(&asm::print_program(&program))
                .unwrap_or_else(|e| panic!("{} thread {thread}: {e}", w.name()));
            assert_eq!(reparsed, program, "{} thread {thread}", w.name());
        }
    }
}

/// Malformed inputs die with precise spans — the error cases a loader must
/// report usefully, asserted to the exact line and column.
#[test]
fn malformed_inputs_report_precise_spans() {
    let e = asm::parse_image(".program x\n    nop\n    frobnicate r1\n").unwrap_err();
    assert_eq!(e.kind, AsmErrorKind::UnknownMnemonic("frobnicate".into()));
    assert_eq!(e.span, Span::new(3, 5));

    let e = asm::parse_image(".program x\n    beqz r3, missing\n").unwrap_err();
    assert_eq!(e.kind, AsmErrorKind::DanglingLabel("missing".into()));
    assert_eq!(e.span, Span::new(2, 14));

    let e = asm::parse_image(".program x\ntwice:\n    nop\ntwice:\n    halt\n").unwrap_err();
    assert_eq!(e.kind, AsmErrorKind::DuplicateLabel("twice".into()));
    assert_eq!(e.span, Span::new(4, 1));

    let e = asm::parse_image(".program x\n    li r95, 3\n").unwrap_err();
    assert_eq!(e.kind, AsmErrorKind::BadRegister("r95".into()));
    assert_eq!(e.span, Span::new(2, 8));

    let e = asm::parse_image(".program x\n    j 12\n").unwrap_err();
    assert_eq!(
        e.kind,
        AsmErrorKind::TargetOutOfRange { target: 12, len: 1 }
    );
    assert_eq!(e.span, Span::new(2, 7));

    // Errors format with their position — what a build log shows.
    let text = asm::parse_image(".program x\n    wat\n")
        .unwrap_err()
        .to_string();
    assert!(text.contains("line 2, col 5"), "{text}");
}

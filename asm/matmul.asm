; 8x8 integer matrix multiply, C = A * B, repeated forever.
;
; A and B live in the private region and are seeded by .data directives;
; each outer pass perturbs A[0] so successive products differ. The inner
; product accumulates in a register and stores each C element exactly
; once, so C needs no initial image.
.program matmul

; A[i] = (7*i + 3) mod 64
.data 0x40000000
.word 3, 10, 17, 24, 31, 38, 45, 52
.word 59, 2, 9, 16, 23, 30, 37, 44
.word 51, 58, 1, 8, 15, 22, 29, 36
.word 43, 50, 57, 0, 7, 14, 21, 28
.word 35, 42, 49, 56, 63, 6, 13, 20
.word 27, 34, 41, 48, 55, 62, 5, 12
.word 19, 26, 33, 40, 47, 54, 61, 4
.word 11, 18, 25, 32, 39, 46, 53, 60

; B[i] = (13*i + 5) mod 64
.data 0x40000200
.word 5, 18, 31, 44, 57, 6, 19, 32
.word 45, 58, 7, 20, 33, 46, 59, 8
.word 21, 34, 47, 60, 9, 22, 35, 48
.word 61, 10, 23, 36, 49, 62, 11, 24
.word 37, 50, 63, 12, 25, 38, 51, 0
.word 13, 26, 39, 52, 1, 14, 27, 40
.word 53, 2, 15, 28, 41, 54, 3, 16
.word 29, 42, 55, 4, 17, 30, 43, 56

    li   r1, 0x40000000      ; A
    li   r2, 0x40000200      ; B
    li   r3, 0x40000400      ; C
    li   r31, 1

outer:
    ld   r4, (r1)            ; perturb A[0] each pass
    add  r4, r4, r31
    st   (r1), r4
    li   r5, 0               ; i
i_loop:
    li   r6, 0               ; j
j_loop:
    li   r7, 0               ; k
    li   r8, 0               ; acc
k_loop:
    shli r9, r5, 3
    add  r9, r9, r7
    shli r9, r9, 3
    add  r9, r9, r1          ; &A[i*8+k]
    ld   r10, (r9)
    shli r11, r7, 3
    add  r11, r11, r6
    shli r11, r11, 3
    add  r11, r11, r2        ; &B[k*8+j]
    ld   r12, (r11)
    mul  r13, r10, r12
    add  r8, r8, r13
    addi r7, r7, 1
    subi r14, r7, 8
    bltz r14, k_loop
    shli r9, r5, 3
    add  r9, r9, r6
    shli r9, r9, 3
    add  r9, r9, r3          ; &C[i*8+j]
    st   (r9), r8
    addi r6, r6, 1
    subi r14, r6, 8
    bltz r14, j_loop
    addi r5, r5, 1
    subi r14, r5, 8
    bltz r14, i_loop
    j    outer

; Symmetric two-thread producer/consumer ring with flag publication.
;
; Each thread writes a 4-word payload into its own buffer, publishes its
; sequence number to a flag word, then spins until the peer's flag
; catches up and reads the peer's buffer *without* holding any lock. The
; peer may already be producing the next payload into that buffer — a
; genuine data race on the payload words, plus the flag-spin itself is a
; remote-write/local-spin incoherence window. Both threads publish
; before waiting, so the ring never deadlocks.
.program flag_ring

.data 0x03000000
.word 0                      ; flag[0]
.data 0x03000040
.word 0                      ; flag[1] (separate cache line)

.thread 0
    li   r1, 0x03000000      ; my flag
    li   r2, 0x03000040      ; peer flag
    li   r3, 0x10000000      ; my buffer
    li   r4, 0x10000100      ; peer buffer
    li   r5, 1               ; seq
loop:
    muli r6, r5, 2654435761  ; produce 4 payload words
    st   (r3), r6
    addi r7, r6, 1
    st   8(r3), r7
    addi r7, r6, 2
    st   16(r3), r7
    addi r7, r6, 3
    st   24(r3), r7
    membar
    st   (r1), r5            ; publish
wait:
    ld   r8, (r2)
    sub  r9, r8, r5
    bltz r9, wait            ; peer behind: spin
    ld   r10, (r4)           ; racy read of the peer's payload
    ld   r11, 8(r4)
    add  r10, r10, r11
    ld   r11, 16(r4)
    add  r10, r10, r11
    ld   r11, 24(r4)
    add  r10, r10, r11
    add  r30, r30, r10       ; running digest
    addi r5, r5, 1
    j    loop

.thread 1
    li   r1, 0x03000040      ; my flag
    li   r2, 0x03000000      ; peer flag
    li   r3, 0x10000100      ; my buffer
    li   r4, 0x10000000      ; peer buffer
    li   r5, 1               ; seq
loop:
    muli r6, r5, 2246822519
    st   (r3), r6
    addi r7, r6, 1
    st   8(r3), r7
    addi r7, r6, 2
    st   16(r3), r7
    addi r7, r6, 3
    st   24(r3), r7
    membar
    st   (r1), r5
wait:
    ld   r8, (r2)
    sub  r9, r8, r5
    bltz r9, wait
    ld   r10, (r4)
    ld   r11, 8(r4)
    add  r10, r10, r11
    ld   r11, 16(r4)
    add  r10, r10, r11
    ld   r11, 24(r4)
    add  r10, r10, r11
    add  r30, r30, r10
    addi r5, r5, 1
    j    loop

; Bitwise CRC over a 16-word buffer — the checksum/decode loop.
;
; Classic reflected shift-and-conditionally-xor rounds: the branch in the
; inner loop depends on the low bit of the running remainder, i.e. on
; loaded data, which is exactly the data-dependent control flow synthetic
; workloads can only approximate. Each full pass folds the digest back
; into the buffer, so every pass decodes different data.
.program crc32

.data 0x40000000
.word 0x0123456789abcdef, 0x5a5a5a5a5a5a5a5a, 0xfeedfacecafebeef, 0x1111111122222222
.word 0x0f0f0f0ff0f0f0f0, 0x7fffffffffffffff, 0x8000000000000001, 0x00000000deadbeef
.word 0x13579bdf2468ace0, 0xaaaaaaaa55555555, 0x0000ffff0000ffff, 0x123456789abcdef0
.word 0x6996699669966996, 0x0102030405060708, 0xffffffffffffffff, 0x00000000000000ff

    li   r1, 0x40000000      ; buffer base
    li   r2, 16              ; words
    li   r3, -1              ; crc = ~0

outer:
    addi r4, r1, 0           ; ptr
    li   r5, 0               ; idx
word_loop:
    ld   r6, (r4)
    xor  r3, r3, r6
    li   r7, 8               ; rounds per word
bit_loop:
    shli r8, r3, 63          ; low bit into the sign position
    shri r9, r3, 1
    bltz r8, fold_poly
    addi r3, r9, 0
    j    bit_next
fold_poly:
    li   r10, 0xc96c5795d7870f42
    xor  r3, r9, r10
bit_next:
    subi r7, r7, 1
    bnez r7, bit_loop
    addi r4, r4, 8
    addi r5, r5, 1
    sub  r11, r5, r2
    bltz r11, word_loop
    ; fold the digest back in so the next pass sees new data
    ld   r6, (r1)
    xor  r6, r6, r3
    st   (r1), r6
    j    outer

; Iterative quicksort over a 64-element private array.
;
; Each outer pass refills the array from an LCG (top 31 bits, so signed
; subtract comparisons never overflow), sorts it with Lomuto partitioning
; and an explicit lo/hi stack in memory, then self-checks sortedness,
; bumping a pass counter (0x40002000) or a failure counter (0x40002008).
; The kernel never halts: sampling windows land somewhere inside an
; endless sort/verify/refill cycle, like the generator's workloads.
.program quicksort

.data 0x40002000
.word 0, 0                   ; verified-pass counter, failure counter

    li   r1, 0x40000000      ; array base (private region)
    li   r2, 0x40001000      ; lo/hi stack base
    li   r3, 64              ; N
    li   r31, 0x12345        ; LCG state, carried across passes

outer:
    ; refill: a[i] = (top 31 bits of LCG state) for i in 0..N
    li   r4, 0               ; i
    addi r5, r1, 0           ; ptr
refill:
    muli r31, r31, 2862933555777941757
    addi r31, r31, 3037000493
    shri r6, r31, 33
    st   (r5), r6
    addi r5, r5, 8
    addi r4, r4, 1
    sub  r7, r4, r3
    bltz r7, refill

    ; push the whole range (lo=0, hi=N-1)
    addi r8, r2, 0           ; sp
    li   r9, 0
    st   (r8), r9
    subi r10, r3, 1
    st   8(r8), r10
    addi r8, r8, 16

qs_loop:
    sub  r7, r8, r2
    beqz r7, verify          ; stack empty: check, then next pass
    subi r8, r8, 16
    ld   r11, (r8)           ; lo
    ld   r12, 8(r8)          ; hi
    sub  r7, r11, r12
    bltz r7, do_part         ; only ranges with lo < hi
    j    qs_loop

do_part:
    shli r13, r12, 3
    add  r13, r13, r1        ; &a[hi]
    ld   r14, (r13)          ; pivot = a[hi]
    subi r15, r11, 1         ; i = lo - 1
    addi r16, r11, 0         ; j = lo
part_loop:
    sub  r7, r16, r12
    beqz r7, part_done
    shli r17, r16, 3
    add  r17, r17, r1        ; &a[j]
    ld   r18, (r17)
    sub  r7, r18, r14
    bltz r7, part_swap       ; a[j] < pivot
    j    part_next
part_swap:
    addi r15, r15, 1
    shli r19, r15, 3
    add  r19, r19, r1        ; &a[i]
    ld   r20, (r19)
    st   (r19), r18
    st   (r17), r20
part_next:
    addi r16, r16, 1
    j    part_loop
part_done:
    addi r15, r15, 1         ; p = i + 1
    shli r19, r15, 3
    add  r19, r19, r1        ; &a[p]
    ld   r20, (r19)
    ld   r18, (r13)
    st   (r19), r18          ; swap a[p] <-> a[hi]
    st   (r13), r20
    ; push (lo, p-1) and (p+1, hi); the pop-side lo<hi check culls
    ; empty ranges, so p-1 < lo and p+1 > hi are harmless
    st   (r8), r11
    subi r21, r15, 1
    st   8(r8), r21
    addi r8, r8, 16
    addi r21, r15, 1
    st   (r8), r21
    st   8(r8), r12
    addi r8, r8, 16
    j    qs_loop

verify:
    li   r22, 0              ; i
    subi r23, r3, 1          ; N-1 adjacent pairs
    addi r24, r1, 0          ; ptr
ver_loop:
    ld   r25, (r24)
    ld   r26, 8(r24)
    sub  r27, r26, r25
    bltz r27, ver_fail       ; a[i+1] < a[i]: not sorted
    addi r24, r24, 8
    addi r22, r22, 1
    sub  r27, r22, r23
    bltz r27, ver_loop
    li   r28, 0x40002000
    ld   r29, (r28)
    addi r29, r29, 1
    st   (r28), r29
    j    outer
ver_fail:
    li   r28, 0x40002008
    ld   r29, (r28)
    addi r29, r29, 1
    st   (r28), r29
    j    outer

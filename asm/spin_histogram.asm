; Two threads binning LCG samples into a shared histogram.
;
; Two genuine shared-memory races drive the paper's input-incoherence
; machinery: an *unlocked* read-modify-write of the hot counter (both
; threads, no ordering), and the test-and-test-and-set spinlock — a
; remote release landing between a vocal/mute pair's two reads of the
; lock word is Figure 1's incoherence scenario verbatim. Bin updates
; inside the critical section are membar-fenced, so the locked path
; stays coherent.
.program spin_histogram

.data 0x01000000
.word 0                      ; lock word
.data 0x02000000
.word 0                      ; hot counter (racy, unlocked)
.data 0x10000000
.word 0, 0, 0, 0, 0, 0, 0, 0 ; 8 histogram bins

.thread 0
    li   r1, 0x01000000      ; lock
    li   r2, 0x02000000      ; hot counter
    li   r3, 0x10000000      ; bins
    li   r31, 0x9e3779b9     ; LCG state (per-thread seed)
loop:
    ld   r4, (r2)            ; racy unlocked increment
    addi r4, r4, 1
    st   (r2), r4
    muli r31, r31, 2862933555777941757
    addi r31, r31, 3037000493
    shri r5, r31, 61         ; bin index 0..7
    shli r5, r5, 3
    add  r5, r5, r3
    li   r6, 1
acquire:
    ld   r7, (r1)            ; test: plain load on the contended word
    bnez r7, acquire
    swap r7, (r1), r6        ; and set
    bnez r7, acquire
    membar
    ld   r8, (r5)            ; bin++ under the lock
    addi r8, r8, 1
    st   (r5), r8
    membar
    li   r9, 0
    st   (r1), r9            ; release
    j    loop

.thread 1
    li   r1, 0x01000000      ; lock
    li   r2, 0x02000000      ; hot counter
    li   r3, 0x10000000      ; bins
    li   r31, 0x7f4a7c15     ; different seed, same protocol
loop:
    ld   r4, (r2)
    addi r4, r4, 1
    st   (r2), r4
    muli r31, r31, 2862933555777941757
    addi r31, r31, 3037000493
    shri r5, r31, 61
    shli r5, r5, 3
    add  r5, r5, r3
    li   r6, 1
acquire:
    ld   r7, (r1)
    bnez r7, acquire
    swap r7, (r1), r6
    bnez r7, acquire
    membar
    ld   r8, (r5)
    addi r8, r8, 1
    st   (r5), r8
    membar
    li   r9, 0
    st   (r1), r9
    j    loop

//! Minimal out-of-tree dispatch worker, with fault-injection knobs.
//!
//! This is what a shard worker looks like when built on `reunion-sim`'s
//! public surface alone: read `REUNION_SHARD=i/N` and `REUNION_OUT_DIR`,
//! open (or resume) the shard's crash-safe manifest, and append one
//! record per cell of the fixed [`reunion::testkit::dispatch_grid`]. The
//! dispatch integration suite launches it through `LocalProcess`
//! transports and drives its fault knobs via the environment:
//!
//! * `WORKER_FAIL_AT_START=1` — exit(3) before touching the manifest
//!   (a host that dies before its first cell),
//! * `WORKER_STALL_AFTER=<k>` — complete `k` cells this run, then hang
//!   forever (a wedged host the lease must catch),
//! * `WORKER_EXIT_AFTER=<k>` — complete `k` cells this run, then exit(4)
//!   (a host that dies mid-shard, leaving a partial manifest).
//!
//! The knobs count cells completed *by this invocation*, so a seeded
//! (resumed) re-dispatch on a healthy host runs the remaining cells
//! normally.

use std::process::exit;
use std::time::Duration;

use reunion::testkit::dispatch_grid;
use reunion_sim::{env_flag, measure_cell, out_dir, ManifestHeader, ShardManifest, ShardSpec};

fn env_count(name: &str) -> Option<usize> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

fn main() {
    if env_flag("WORKER_FAIL_AT_START") {
        eprintln!("shard_worker: WORKER_FAIL_AT_START set; dying before the first cell");
        exit(3);
    }
    let shard = match ShardSpec::from_env() {
        Ok(Some(shard)) => shard,
        Ok(None) => {
            eprintln!("shard_worker: REUNION_SHARD=i/N is required");
            exit(2);
        }
        Err(e) => {
            eprintln!("shard_worker: {e}");
            exit(2);
        }
    };
    let stall_after = env_count("WORKER_STALL_AFTER");
    let exit_after = env_count("WORKER_EXIT_AFTER");

    let grid = dispatch_grid();
    let header = ManifestHeader {
        id: grid.id().to_string(),
        caption: grid.caption().to_string(),
        shard,
        cells: grid.cells().len(),
        sample: *grid.sample(),
        sample_overrides: grid.sample_overrides().to_vec(),
        obs: *grid.observability(),
    };
    let dir = out_dir();
    let mut manifest = match ShardManifest::create_or_resume(&dir, header) {
        Ok(m) => m,
        Err(e) => {
            eprintln!(
                "shard_worker: cannot open manifest under {}: {e}",
                dir.display()
            );
            exit(1);
        }
    };
    let todo: Vec<usize> = shard
        .cell_indices(grid.cells().len())
        .into_iter()
        .filter(|i| !manifest.completed().contains_key(i))
        .collect();
    println!(
        "shard_worker: shard {shard}, {} cell(s) resumed, {} to run",
        manifest.completed().len(),
        todo.len()
    );

    // The fault knobs count cells completed *by this invocation*:
    // `done_this_run` is the number finished before the current cell.
    for (done_this_run, i) in todo.into_iter().enumerate() {
        if stall_after.is_some_and(|k| done_this_run >= k) {
            println!("shard_worker: WORKER_STALL_AFTER reached; hanging");
            loop {
                std::thread::sleep(Duration::from_secs(3600));
            }
        }
        if exit_after.is_some_and(|k| done_this_run >= k) {
            eprintln!("shard_worker: WORKER_EXIT_AFTER reached; dying mid-shard");
            exit(4);
        }
        let record = measure_cell(&grid, &grid.cells()[i]);
        if let Err(e) = manifest.append(i, &record) {
            eprintln!("shard_worker: cannot append cell {i}: {e}");
            exit(1);
        }
    }
    println!("shard_worker: shard {shard} complete");
}

//! Umbrella crate: re-exports the Reunion reproduction workspace.
//!
//! The implementation lives in the sub-crates; this crate gives examples
//! and integration tests a single dependency and offers the whole public
//! API under one name.
//!
//! ```
//! use reunion::core_model::{ExecutionMode, SystemConfig};
//! let cfg = SystemConfig::table1(ExecutionMode::Reunion);
//! assert_eq!(cfg.physical_cores(), 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use reunion_core as core_model;
pub use reunion_cpu as cpu;
pub use reunion_fingerprint as fingerprint;
pub use reunion_isa as isa;
pub use reunion_kernel as kernel;
pub use reunion_mem as mem;
pub use reunion_workloads as workloads;

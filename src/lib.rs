//! Umbrella crate: re-exports the Reunion reproduction workspace.
//!
//! The implementation lives in the sub-crates; this crate gives examples
//! and integration tests a single dependency and offers the whole public
//! API under one name.
//!
//! ```
//! use reunion::core_model::{ExecutionMode, SystemConfig};
//! let cfg = SystemConfig::table1(ExecutionMode::Reunion);
//! assert_eq!(cfg.physical_cores(), 8);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use reunion_core as core_model;
pub use reunion_cpu as cpu;
pub use reunion_fingerprint as fingerprint;
pub use reunion_isa as isa;
pub use reunion_kernel as kernel;
pub use reunion_mem as mem;
pub use reunion_sim as sim;
pub use reunion_workloads as workloads;

/// Shared fixtures for the dispatch integration suite.
///
/// The `shard_worker` test binary (an out-of-tree dispatch worker built
/// on `reunion-sim`'s public shard surface) and `tests/dispatch.rs` must
/// agree on one experiment grid — the worker executes its shards, the
/// test compares the dispatcher's merged artifact against a serial
/// in-process run of the same grid. Defining the grid once here keeps
/// that contract in a single place.
pub mod testkit {
    use reunion_core::{ExecutionMode, SampleConfig, SystemConfig};
    use reunion_sim::{ConfigPatch, ExperimentGrid};
    use reunion_workloads::Workload;

    /// The reference grid for dispatch tests: two workloads × two paired
    /// modes × two comparison latencies (8 cells) under the quick
    /// sampling profile — heterogeneous enough to shard meaningfully,
    /// cheap enough for CI.
    pub fn dispatch_grid() -> ExperimentGrid {
        ExperimentGrid::builder("dispatchtest", "dispatch integration grid")
            .base(SystemConfig::small_test)
            .sample(SampleConfig::quick())
            .workloads(vec![
                Workload::by_name("sparse").unwrap(),
                Workload::by_name("moldyn").unwrap(),
            ])
            .modes(&[ExecutionMode::Strict, ExecutionMode::Reunion])
            .patches(vec![
                ConfigPatch::new("lat=0").latency(0),
                ConfigPatch::new("lat=20").latency(20),
            ])
            .build()
    }
}
